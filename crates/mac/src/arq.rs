//! Stop-and-wait ARQ on a lossy Braidio link.
//!
//! The characterization defines "operational" as BER < 10⁻², which at
//! 2000-bit packets still means double-digit packet error rates near the
//! regime edges. A link layer retransmits; this module provides the
//! closed-form expectation used by the simulator and examples to convert
//! PER into goodput and energy multipliers.

/// Truncated-retry stop-and-wait ARQ over a channel with i.i.d. packet
/// error rate `per`.
#[derive(Debug, Clone, Copy)]
pub struct ArqModel {
    /// Packet error probability per attempt (data or its ACK lost).
    pub per: f64,
    /// Maximum transmissions per packet (1 = no retries).
    pub max_transmissions: u32,
    /// ACK length relative to the data packet (airtime/energy fraction).
    pub ack_fraction: f64,
}

impl ArqModel {
    /// An ARQ with the given attempt-loss probability and retry cap.
    pub fn new(per: f64, max_transmissions: u32) -> Self {
        assert!((0.0..=1.0).contains(&per), "per must be a probability");
        assert!(max_transmissions >= 1, "need at least one transmission");
        ArqModel {
            per,
            max_transmissions,
            ack_fraction: 0.05,
        }
    }

    /// Expected number of transmissions per packet (truncated geometric).
    pub fn expected_transmissions(&self) -> f64 {
        let p = self.per;
        let n = self.max_transmissions as i32;
        if p == 0.0 {
            return 1.0;
        }
        if p == 1.0 {
            return n as f64;
        }
        // E[min(Geom(1-p), n)] = (1 - p^n) / (1 - p).
        (1.0 - p.powi(n)) / (1.0 - p)
    }

    /// Probability the packet is eventually delivered within the cap.
    pub fn delivery_probability(&self) -> f64 {
        1.0 - self.per.powi(self.max_transmissions as i32)
    }

    /// Energy/airtime multiplier relative to a loss-free link, counting
    /// ACK overhead on every attempt.
    pub fn cost_multiplier(&self) -> f64 {
        self.expected_transmissions() * (1.0 + self.ack_fraction)
    }

    /// Goodput factor: delivered payload per unit airtime relative to a
    /// loss-free, ACK-free link.
    pub fn goodput_factor(&self) -> f64 {
        self.delivery_probability() / self.cost_multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_is_free() {
        let a = ArqModel::new(0.0, 8);
        assert_eq!(a.expected_transmissions(), 1.0);
        assert_eq!(a.delivery_probability(), 1.0);
        assert!((a.goodput_factor() - 1.0 / 1.05).abs() < 1e-12);
    }

    #[test]
    fn truncated_geometric_math() {
        let a = ArqModel::new(0.5, 3);
        // E = (1 - 0.125)/0.5 = 1.75.
        assert!((a.expected_transmissions() - 1.75).abs() < 1e-12);
        assert!((a.delivery_probability() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn no_retries_degenerates() {
        let a = ArqModel::new(0.3, 1);
        assert_eq!(a.expected_transmissions(), 1.0);
        assert!((a.delivery_probability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn dead_channel_burns_full_budget() {
        let a = ArqModel::new(1.0, 5);
        assert_eq!(a.expected_transmissions(), 5.0);
        assert_eq!(a.delivery_probability(), 0.0);
        assert_eq!(a.goodput_factor(), 0.0);
    }

    #[test]
    fn monotone_in_per() {
        let mut prev_cost = 0.0;
        let mut prev_good = f64::MAX;
        for per in [0.0, 0.05, 0.2, 0.5, 0.9] {
            let a = ArqModel::new(per, 8);
            assert!(a.cost_multiplier() >= prev_cost);
            assert!(a.goodput_factor() <= prev_good);
            prev_cost = a.cost_multiplier();
            prev_good = a.goodput_factor();
        }
    }

    #[test]
    fn more_retries_help_delivery_but_cost_energy() {
        let short = ArqModel::new(0.3, 2);
        let long = ArqModel::new(0.3, 10);
        assert!(long.delivery_probability() > short.delivery_probability());
        assert!(long.expected_transmissions() > short.expected_transmissions());
    }

    #[test]
    fn operational_ber_threshold_is_retry_friendly() {
        // At the characterization's BER=1e-2 edge with 2120-bit packets,
        // PER ≈ 1 - 0.99^2120... practically 1. The *operating* points the
        // scheduler uses sit well inside the boundary; at BER = 1e-4 the
        // PER is ~19% and ARQ recovers it with ~1.24 attempts.
        let per = 1.0 - (1.0f64 - 1e-4).powi(2120);
        let a = ArqModel::new(per, 8);
        assert!((0.15..0.25).contains(&per), "per {per}");
        assert!(a.delivery_probability() > 0.999_99);
        assert!(a.expected_transmissions() < 1.3);
    }
}
