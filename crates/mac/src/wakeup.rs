//! Passive wake-up radio — the "interesting option" the architecture
//! enables (§4).
//!
//! The passive-receiver mode "is not one we sought out to design, but is an
//! interesting option that we enable through our architecture": a device
//! can leave its ~35 µW envelope-detector chain listening *continuously*
//! instead of duty-cycling a ~90 mW active receiver. This module
//! quantifies that trade against classic low-power-listening (LPL, à la
//! B-MAC, ref. \[43\]) and wake-up-radio schemes \[21, 38\] from related
//! work.

use braidio_units::{Seconds, Watts};

/// A duty-cycled active listener (low-power listening).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycledListener {
    /// Receiver power while listening.
    pub on_power: Watts,
    /// Sleep power between listen windows.
    pub sleep_power: Watts,
    /// Wake-up check period.
    pub period: Seconds,
    /// Listen-window length per period (enough for preamble detection).
    pub on_time: Seconds,
}

impl DutyCycledListener {
    /// A BLE-class radio checking every `period` with a 2 ms window.
    pub fn ble(period: Seconds) -> Self {
        DutyCycledListener {
            on_power: Watts::from_milliwatts(90.81),
            sleep_power: Watts::from_microwatts(15.0),
            period,
            on_time: Seconds::from_millis(2.0),
        }
    }

    /// Average idle-listening power.
    pub fn average_power(&self) -> Watts {
        assert!(
            self.on_time <= self.period,
            "listen window cannot exceed the period"
        );
        let duty = self.on_time / self.period;
        self.on_power * duty + self.sleep_power * (1.0 - duty)
    }

    /// Worst-case latency until a wake-up is noticed: the sender must keep
    /// signalling for a full period.
    pub fn worst_latency(&self) -> Seconds {
        self.period
    }

    /// Mean wake-up latency (uniform arrival within a period).
    pub fn mean_latency(&self) -> Seconds {
        self.period / 2.0
    }
}

/// The always-on passive (envelope-detector) wake-up receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassiveWakeup {
    /// Continuous draw of the detector chain (amp + comparator + switch)
    /// plus the MCU asleep waiting on a pin-change interrupt.
    pub chain_power: Watts,
    /// Detection latency: one wake-word frame at the signalling rate.
    pub detect_latency: Seconds,
}

impl PassiveWakeup {
    /// Braidio's chain (≈35 µW) plus MCU sleep, with a 64-bit wake word at
    /// 100 kbps.
    pub fn braidio() -> Self {
        PassiveWakeup {
            chain_power: Watts::from_microwatts(50.0),
            detect_latency: Seconds::from_micros(640.0),
        }
    }

    /// The duty-cycle period at which an LPL listener's average power would
    /// merely *match* this always-on receiver (it still loses on latency by
    /// `period / detect_latency`).
    pub fn equivalent_lpl_period(&self, lpl: &DutyCycledListener) -> Seconds {
        // duty = (P_eq - P_sleep) / (P_on - P_sleep); period = on_time/duty.
        let duty = (self.chain_power - lpl.sleep_power) / (lpl.on_power - lpl.sleep_power);
        assert!(duty > 0.0, "passive chain below LPL sleep floor");
        lpl.on_time / duty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpl_average_power_math() {
        let l = DutyCycledListener::ble(Seconds::new(1.0));
        // 2 ms of 90.81 mW per second ≈ 181.6 µW + sleep share.
        let avg = l.average_power();
        assert!((avg.microwatts() - (181.62 + 14.97)).abs() < 1.0, "{avg}");
    }

    #[test]
    fn passive_beats_second_scale_lpl_on_both_axes() {
        let passive = PassiveWakeup::braidio();
        let lpl = DutyCycledListener::ble(Seconds::new(1.0));
        assert!(passive.chain_power < lpl.average_power());
        assert!(passive.detect_latency < lpl.mean_latency());
    }

    #[test]
    fn lpl_only_matches_power_at_huge_periods() {
        let passive = PassiveWakeup::braidio();
        let lpl = DutyCycledListener::ble(Seconds::new(1.0));
        let eq = passive.equivalent_lpl_period(&lpl);
        // The LPL listener must slow to multi-second checks just to tie on
        // power — while the passive chain still wakes in sub-millisecond.
        assert!(eq > Seconds::new(4.0), "equivalent period {eq}");
        let slow = DutyCycledListener::ble(eq);
        let ratio = slow.average_power() / passive.chain_power;
        assert!((ratio - 1.0).abs() < 0.05, "power ratio {ratio}");
        assert!(slow.mean_latency() / passive.detect_latency > 1000.0);
    }

    #[test]
    fn faster_checking_costs_power() {
        let fast = DutyCycledListener::ble(Seconds::from_millis(100.0));
        let slow = DutyCycledListener::ble(Seconds::new(2.0));
        assert!(fast.average_power() > slow.average_power());
        assert!(fast.mean_latency() < slow.mean_latency());
    }

    #[test]
    #[should_panic(expected = "listen window")]
    fn degenerate_period_rejected() {
        let l = DutyCycledListener::ble(Seconds::from_millis(1.0));
        let _ = l.average_power();
    }
}
