//! The braided mode scheduler (§4.2).
//!
//! "Once the fraction of time to operate each mode is determined, Braidio
//! simply switches between the modes after a certain number of packets to
//! achieve that proportion. For example, if p1 = 0.5, p2 = 0.25, p3 = 0.25
//! then a possible sequence could be Active-Active-Passive-Backscatter
//! (repeated)."
//!
//! The scheduler emits that sequence deterministically (largest-remainder /
//! Bresenham accumulation, which reproduces exactly the paper's example)
//! and implements the §4.2 dynamics: on repeated failures it falls back to
//! the active mode and requests a re-probe/re-plan.

use crate::offload::{LinkOption, OffloadPlan};
use braidio_radio::Mode;

/// What the scheduler wants the radio to do next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Send the next packet with this option.
    Send(LinkOption),
    /// The link is degraded: fall back to active and re-plan.
    Replan,
}

/// The braided per-packet scheduler.
#[derive(Debug, Clone)]
pub struct BraidedScheduler {
    options: Vec<LinkOption>,
    fractions: Vec<f64>,
    credit: Vec<f64>,
    dwell_idx: usize,
    dwell_left: u32,
    quantum: u32,
    last_mode: Option<Mode>,
    switches: u64,
    consecutive_failures: u32,
    /// Failures in a row that trigger fallback (paper: "falls back to the
    /// active mode if the current operating mode is performing poorly").
    pub failure_threshold: u32,
}

impl BraidedScheduler {
    /// Build a scheduler from an offload plan, alternating per packet.
    pub fn new(plan: &OffloadPlan) -> Self {
        let options: Vec<LinkOption> = plan.allocations.iter().map(|a| a.option).collect();
        let fractions: Vec<f64> = plan.allocations.iter().map(|a| a.fraction).collect();
        assert!(!options.is_empty(), "plan has no allocations");
        BraidedScheduler {
            credit: vec![0.0; options.len()],
            options,
            fractions,
            dwell_idx: 0,
            dwell_left: 0,
            quantum: 1,
            last_mode: None,
            switches: 0,
            consecutive_failures: 0,
            failure_threshold: 3,
        }
    }

    /// Dwell for `quantum` packets before the braid may switch modes
    /// (§4.2: "switches between the modes after a certain number of
    /// packets"). Larger quanta amortize the Table 5 switch energy at the
    /// cost of coarser fraction tracking.
    pub fn with_quantum(mut self, quantum: u32) -> Self {
        assert!(quantum >= 1, "quantum must be at least one packet");
        self.quantum = quantum;
        self
    }

    /// The next packet's option: largest-accumulated-credit rule applied at
    /// dwell boundaries.
    // Not an `Iterator`: `Decision` is not an `Option` and the braid never
    // ends on its own.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Decision {
        if self.consecutive_failures >= self.failure_threshold {
            return Decision::Replan;
        }
        if self.dwell_left == 0 {
            for (c, f) in self.credit.iter_mut().zip(&self.fractions) {
                *c += f;
            }
            let (idx, _) = self
                .credit
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite credit"))
                .expect("non-empty");
            self.credit[idx] -= 1.0;
            self.dwell_idx = idx;
            self.dwell_left = self.quantum;
        }
        self.dwell_left -= 1;
        let opt = self.options[self.dwell_idx];
        if self.last_mode != Some(opt.mode) {
            if self.last_mode.is_some() {
                self.switches += 1;
            }
            self.last_mode = Some(opt.mode);
        }
        Decision::Send(opt)
    }

    /// Report the outcome of the last packet.
    pub fn report(&mut self, delivered: bool) {
        if delivered {
            self.consecutive_failures = 0;
        } else {
            self.consecutive_failures += 1;
        }
    }

    /// Mode switches so far (each costs the Table 5 overhead).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The mode the radio is currently in, if any packet has been sent.
    pub fn current_mode(&self) -> Option<Mode> {
        self.last_mode
    }

    /// Generate the first `n` scheduled modes (for inspection/tests).
    pub fn preview(&mut self, n: usize) -> Vec<Mode> {
        (0..n)
            .filter_map(|_| match self.next() {
                Decision::Send(o) => Some(o.mode),
                Decision::Replan => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offload::{Allocation, OffloadPlan};
    use braidio_radio::characterization::Rate;
    use braidio_units::JoulesPerBit;

    fn opt(mode: Mode) -> LinkOption {
        LinkOption {
            mode,
            rate: Rate::Mbps1,
            tx_cost: JoulesPerBit::from_nanojoules(1.0),
            rx_cost: JoulesPerBit::from_nanojoules(1.0),
        }
    }

    fn plan(parts: &[(Mode, f64)]) -> OffloadPlan {
        let allocations: Vec<Allocation> = parts
            .iter()
            .map(|&(m, fraction)| Allocation {
                option: opt(m),
                fraction,
            })
            .collect();
        OffloadPlan {
            allocations: crate::offload::Allocations::from_slice(&allocations),
            tx_cost: JoulesPerBit::from_nanojoules(1.0),
            rx_cost: JoulesPerBit::from_nanojoules(1.0),
            exact: true,
        }
    }

    #[test]
    fn fractions_realized_over_long_run() {
        let p = plan(&[(Mode::Passive, 0.7), (Mode::Backscatter, 0.3)]);
        let mut s = BraidedScheduler::new(&p);
        let seq = s.preview(1000);
        let passive = seq.iter().filter(|&&m| m == Mode::Passive).count();
        assert!((passive as f64 / 1000.0 - 0.7).abs() < 0.01, "{passive}");
    }

    #[test]
    fn paper_example_half_quarter_quarter() {
        // p = (0.5, 0.25, 0.25) -> Active-Active-Passive-Backscatter-ish
        // interleaving: every window of 4 has 2 active, 1 passive, 1
        // backscatter.
        let p = plan(&[
            (Mode::Active, 0.5),
            (Mode::Passive, 0.25),
            (Mode::Backscatter, 0.25),
        ]);
        let mut s = BraidedScheduler::new(&p);
        let seq = s.preview(400);
        for window in seq.chunks(4) {
            let act = window.iter().filter(|&&m| m == Mode::Active).count();
            assert_eq!(act, 2, "window {window:?}");
        }
    }

    #[test]
    fn interleaves_rather_than_batches() {
        // A 50/50 plan must alternate, not send a long run of one mode.
        let p = plan(&[(Mode::Passive, 0.5), (Mode::Backscatter, 0.5)]);
        let mut s = BraidedScheduler::new(&p);
        let seq = s.preview(100);
        let mut max_run = 1;
        let mut run = 1;
        for w in seq.windows(2) {
            if w[0] == w[1] {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(max_run <= 2, "run of {max_run}");
    }

    #[test]
    fn switch_counting() {
        let p = plan(&[(Mode::Passive, 0.5), (Mode::Backscatter, 0.5)]);
        let mut s = BraidedScheduler::new(&p);
        let _ = s.preview(10);
        // Alternating 10 packets -> 9 switches.
        assert_eq!(s.switches(), 9);
    }

    #[test]
    fn single_mode_never_switches() {
        let p = plan(&[(Mode::Passive, 1.0)]);
        let mut s = BraidedScheduler::new(&p);
        let _ = s.preview(50);
        assert_eq!(s.switches(), 0);
        assert_eq!(s.current_mode(), Some(Mode::Passive));
    }

    #[test]
    fn quantum_dwell_amortizes_switches() {
        let p = plan(&[(Mode::Passive, 0.5), (Mode::Backscatter, 0.5)]);
        let mut s = BraidedScheduler::new(&p).with_quantum(50);
        let seq = s.preview(1000);
        // Fractions still realized...
        let passive = seq.iter().filter(|&&m| m == Mode::Passive).count();
        assert!((passive as f64 / 1000.0 - 0.5).abs() < 0.06, "{passive}");
        // ...with ~50x fewer switches than per-packet alternation.
        assert!(s.switches() <= 20, "switches {}", s.switches());
        // Dwells are exactly the quantum long.
        let mut run = 1;
        for w in seq.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                assert_eq!(run, 50, "dwell length {run}");
                run = 1;
            }
        }
    }

    #[test]
    fn failures_trigger_replan() {
        let p = plan(&[(Mode::Backscatter, 1.0)]);
        let mut s = BraidedScheduler::new(&p);
        assert!(matches!(s.next(), Decision::Send(_)));
        s.report(false);
        s.report(false);
        assert!(matches!(s.next(), Decision::Send(_)));
        s.report(false);
        assert_eq!(s.next(), Decision::Replan);
        // Recovery resets the counter.
        s.report(true);
        assert!(matches!(s.next(), Decision::Send(_)));
    }
}
