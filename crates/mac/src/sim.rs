//! The §6.3 link simulator.
//!
//! "We design a simulator that simulates link behavior based on the above
//! described experimental characterization, and outputs the simulated
//! performance given as input the energy levels of two end points and the
//! traffic pattern between them. Our simulator includes a full
//! implementation of the energy-aware carrier offload algorithm."
//!
//! The simulator advances in *epochs*: within an epoch the offload plan is
//! fixed and batteries drain linearly, so the epoch can be integrated in
//! closed form; between epochs the plan is re-solved against the new energy
//! ratio (this is the paper's periodic re-computation). Per-packet costs —
//! Table 5 mode-switch energy at the braid's alternation rate, and probe
//! exchanges at the re-plan cadence — are charged inside each epoch.
//!
//! Four policies share the engine:
//! * [`Policy::Braidio`] — the full carrier-offload algorithm;
//! * [`Policy::Bluetooth`] — the symmetric module baseline (Figs. 15/17/18);
//! * [`Policy::SingleMode`] — one pinned mode (the Fig. 16 comparators);
//! * [`Policy::BestSingleMode`] — the best of the three in isolation
//!   (Fig. 16's baseline).

use crate::offload::{options_at, solve_memo, OffloadPlan};
use braidio_radio::bluetooth::BluetoothRadio;
use braidio_radio::characterization::Characterization;
use braidio_radio::switching::SwitchingOverhead;
use braidio_radio::{Battery, Mode, Role};
use braidio_telemetry as telemetry;
use braidio_units::{Joules, Meters, Seconds};

/// Traffic direction pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traffic {
    /// Device 1 streams to device 2 (Fig. 15's scenario).
    Unidirectional,
    /// Equal data both ways, alternating (Fig. 17's scenario).
    Bidirectional,
}

/// Which link-layer policy drives the transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Energy-aware carrier offload across all viable modes.
    Braidio,
    /// Symmetric Bluetooth module at 1 Mbps.
    Bluetooth,
    /// A single pinned Braidio mode (at its best operational rate).
    SingleMode(Mode),
    /// The best single pinned mode for this device pair.
    BestSingleMode,
}

/// A transfer experiment description.
#[derive(Debug, Clone)]
pub struct TransferSetup {
    /// Link characterization (hardware + calibration).
    pub ch: Characterization,
    /// Mode-switch costs.
    pub switching: SwitchingOverhead,
    /// Device separation.
    pub distance: Meters,
    /// Device 1 battery (the transmitter under unidirectional traffic).
    pub e1: Joules,
    /// Device 2 battery.
    pub e2: Joules,
    /// Traffic pattern.
    pub traffic: Traffic,
    /// Link policy.
    pub policy: Policy,
    /// Link-layer packet size in bits (airtime granularity of the braid).
    pub packet_bits: f64,
    /// Packets sent in one mode before the braid may switch ("switches
    /// between the modes after a certain number of packets", §4.2). Larger
    /// quanta amortize the Table 5 switch energy; smaller quanta track the
    /// target fractions more tightly.
    pub braid_quantum_packets: f64,
    /// Re-plan (probe) interval in link time.
    pub replan_interval: Seconds,
}

impl TransferSetup {
    /// A setup with the paper's defaults: 0.5 m separation (all modes at
    /// peak rate), 256-byte packets, 10 s re-plan cadence.
    pub fn new(e1_wh: f64, e2_wh: f64, policy: Policy) -> Self {
        TransferSetup {
            ch: Characterization::braidio(),
            switching: SwitchingOverhead::table5(),
            distance: Meters::new(0.5),
            e1: Joules::from_watt_hours(e1_wh),
            e2: Joules::from_watt_hours(e2_wh),
            traffic: Traffic::Unidirectional,
            policy,
            packet_bits: 2120.0, // 256-byte payload framed
            braid_quantum_packets: 100.0,
            replan_interval: Seconds::new(10.0),
        }
    }

    /// Same setup at a different distance.
    pub fn at_distance(mut self, d: Meters) -> Self {
        self.distance = d;
        self
    }

    /// Same setup with different traffic.
    pub fn with_traffic(mut self, traffic: Traffic) -> Self {
        self.traffic = traffic;
        self
    }
}

/// Result of a simulated transfer.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total link bits moved before an endpoint died (or the link closed).
    pub bits: f64,
    /// Link time elapsed.
    pub duration: Seconds,
    /// Energy drawn from device 1.
    pub e1_spent: Joules,
    /// Energy drawn from device 2.
    pub e2_spent: Joules,
    /// Bits per mode.
    pub mode_bits: [(Mode, f64); 3],
    /// Epochs simulated (re-plan rounds).
    pub epochs: usize,
    /// Mode switches charged.
    pub switches: f64,
}

impl SimReport {
    fn empty() -> Self {
        SimReport {
            bits: 0.0,
            duration: Seconds::ZERO,
            e1_spent: Joules::ZERO,
            e2_spent: Joules::ZERO,
            mode_bits: [
                (Mode::Active, 0.0),
                (Mode::Passive, 0.0),
                (Mode::Backscatter, 0.0),
            ],
            epochs: 0,
            switches: 0.0,
        }
    }

    fn add_mode_bits(&mut self, mode: Mode, bits: f64) {
        for (m, b) in self.mode_bits.iter_mut() {
            if *m == mode {
                *b += bits;
            }
        }
    }

    /// The fraction of bits carried by `mode`.
    pub fn mode_share(&self, mode: Mode) -> f64 {
        if self.bits == 0.0 {
            return 0.0;
        }
        self.mode_bits
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, b)| b / self.bits)
            .unwrap_or(0.0)
    }
}

/// Run a transfer to battery exhaustion and report the total bits moved.
pub fn simulate_transfer(setup: &TransferSetup) -> SimReport {
    match setup.policy {
        Policy::Bluetooth => simulate_bluetooth(setup),
        Policy::SingleMode(mode) => simulate_single_mode(setup, mode),
        Policy::BestSingleMode => Mode::ALL
            .into_iter()
            .map(|m| simulate_single_mode(setup, m))
            .max_by(|a, b| a.bits.partial_cmp(&b.bits).expect("finite bits"))
            .expect("three modes"),
        Policy::Braidio => simulate_braidio(setup),
    }
}

fn simulate_bluetooth(setup: &TransferSetup) -> SimReport {
    let radio = BluetoothRadio::baseline();
    let t = radio.tx_energy_per_bit().joules_per_bit();
    let r = radio.rx_energy_per_bit().joules_per_bit();
    let (c1, c2) = per_bit_costs_for_traffic(t, r, setup.traffic);
    let bits = (setup.e1.joules() / c1).min(setup.e2.joules() / c2);
    let mut report = SimReport::empty();
    report.bits = bits;
    report.duration = radio.rate.time_for_bits(bits);
    report.e1_spent = Joules::new(bits * c1);
    report.e2_spent = Joules::new(bits * c2);
    report.add_mode_bits(Mode::Active, bits);
    report.epochs = 1;
    report
}

/// Per-bit cost seen by each device given the traffic pattern, for a link
/// whose directional costs are `t` (transmit) and `r` (receive).
fn per_bit_costs_for_traffic(t: f64, r: f64, traffic: Traffic) -> (f64, f64) {
    match traffic {
        Traffic::Unidirectional => (t, r),
        // Half the bits flow each way, so each device transmits half and
        // receives half.
        Traffic::Bidirectional => (0.5 * (t + r), 0.5 * (t + r)),
    }
}

fn simulate_single_mode(setup: &TransferSetup, mode: Mode) -> SimReport {
    let Some(rate) = setup.ch.max_rate(mode, setup.distance) else {
        return SimReport::empty();
    };
    let p = setup.ch.power(mode, rate).expect("rate from table");
    let t = p.tx_energy_per_bit().joules_per_bit();
    let r = p.rx_energy_per_bit().joules_per_bit();
    let (c1, c2) = per_bit_costs_for_traffic(t, r, setup.traffic);
    let bits = (setup.e1.joules() / c1).min(setup.e2.joules() / c2);
    let mut report = SimReport::empty();
    report.bits = bits;
    report.duration = rate.bps().time_for_bits(bits);
    report.e1_spent = Joules::new(bits * c1);
    report.e2_spent = Joules::new(bits * c2);
    report.add_mode_bits(mode, bits);
    report.epochs = 1;
    report
}

/// The braid's mode-alternation rate: switches per packet for a plan with
/// fractions `p` over at most two modes. Public so the network simulator
/// (`braidio-net`) charges the same Table 5 switching overhead per quantum
/// as this pairwise engine.
pub fn switches_per_packet(plan: &OffloadPlan) -> f64 {
    if plan.allocations.len() < 2 {
        return 0.0;
    }
    let p = plan.allocations[0]
        .fraction
        .min(plan.allocations[1].fraction);
    // Bresenham interleaving alternates 2·min(p, 1−p) of the time.
    2.0 * p.min(1.0 - p)
}

fn simulate_braidio(setup: &TransferSetup) -> SimReport {
    telemetry::begin_unit();
    let mut b1 = Battery::new(setup.e1);
    let mut b2 = Battery::new(setup.e2);
    let mut report = SimReport::empty();
    // Primary mode of the previous epoch's transmitter-direction plan, for
    // telemetry ModeSwitch edges at regime transitions.
    let mut last_mode: Option<Mode> = None;

    // Probe exchange cost per re-plan: one 256-bit exchange per mode at its
    // operational rate (see `probe`), approximated from the plan options.
    const MAX_EPOCHS: usize = 20_000;
    // Fraction of the limiting side consumed per epoch.
    const EPOCH_FRACTION: f64 = 0.1;

    // The separation is fixed for the whole transfer, so the viable option
    // set is too; only the battery ratio evolves between epochs.
    let opts = options_at(&setup.ch, setup.distance);

    while !b1.is_dead() && !b2.is_dead() && report.epochs < MAX_EPOCHS {
        report.epochs += 1;

        // One direction per half-epoch under bidirectional traffic.
        let directions: &[(Role, f64)] = match setup.traffic {
            Traffic::Unidirectional => &[(Role::Transmitter, 1.0)],
            Traffic::Bidirectional => &[(Role::Transmitter, 0.5), (Role::Receiver, 0.5)],
        };

        // Resolve plans for each direction against current energy levels.
        let mut plans = Vec::new();
        for &(dir1, share) in directions {
            let (e_tx, e_rx) = match dir1 {
                Role::Transmitter => (b1.remaining(), b2.remaining()),
                Role::Receiver => (b2.remaining(), b1.remaining()),
            };
            match solve_memo(&opts, e_tx, e_rx) {
                Some(plan) => plans.push((dir1, share, plan)),
                None => {
                    // Link out of range.
                    if telemetry::enabled() {
                        let track = telemetry::Track::Pair(0);
                        telemetry::emit(telemetry::Event::Replan {
                            at: report.duration,
                            track,
                            planned: false,
                            exact: false,
                            primary: None,
                        });
                        telemetry::emit(telemetry::Event::SessionDead {
                            at: report.duration,
                            track,
                            reason: telemetry::DeathReason::NoViableMode,
                        });
                    }
                    return report;
                }
            }
        }
        if telemetry::enabled() {
            let track = telemetry::Track::Pair(0);
            for (_, _, plan) in &plans {
                let primary = plan
                    .allocations
                    .iter()
                    .max_by(|a, b| a.fraction.partial_cmp(&b.fraction).expect("finite"))
                    .map(|a| a.option.mode);
                telemetry::emit(telemetry::Event::Replan {
                    at: report.duration,
                    track,
                    planned: true,
                    exact: plan.exact,
                    primary: primary.map(Into::into),
                });
            }
            // Regime transitions show on the transmitter-direction braid.
            let primary = plans[0]
                .2
                .allocations
                .iter()
                .max_by(|a, b| a.fraction.partial_cmp(&b.fraction).expect("finite"))
                .map(|a| a.option.mode);
            if let Some(primary) = primary {
                if last_mode != Some(primary) {
                    telemetry::emit(telemetry::Event::ModeSwitch {
                        at: report.duration,
                        track,
                        from: last_mode.map(Into::into),
                        to: primary.into(),
                    });
                    last_mode = Some(primary);
                }
            }
        }

        // Per-bit drain on each device, aggregated over directions,
        // including amortized switching overhead.
        let mut c1 = 0.0f64;
        let mut c2 = 0.0f64;
        let mut rate_weighted_time_per_bit = 0.0f64;
        let mut switches_per_bit_total = 0.0f64;
        for (dir1, share, plan) in &plans {
            let spp = switches_per_packet(plan);
            let switch_bits = setup.packet_bits * setup.braid_quantum_packets;
            // Average entry cost per switch on each role (alternating
            // entries into the two modes of the braid).
            let (mut sw_tx, mut sw_rx) = (0.0, 0.0);
            if plan.allocations.len() == 2 {
                for a in &plan.allocations {
                    sw_tx += setup
                        .switching
                        .cost(a.option.mode, Role::Transmitter)
                        .joules()
                        / 2.0;
                    sw_rx += setup.switching.cost(a.option.mode, Role::Receiver).joules() / 2.0;
                }
            }
            let sw_tx_per_bit = spp * sw_tx / switch_bits;
            let sw_rx_per_bit = spp * sw_rx / switch_bits;
            switches_per_bit_total += share * spp / switch_bits;

            let t = plan.tx_cost.joules_per_bit() + sw_tx_per_bit;
            let r = plan.rx_cost.joules_per_bit() + sw_rx_per_bit;
            match dir1 {
                Role::Transmitter => {
                    c1 += share * t;
                    c2 += share * r;
                }
                Role::Receiver => {
                    c1 += share * r;
                    c2 += share * t;
                }
            }
            // Airtime per bit: weighted over allocations by fraction/rate.
            for a in &plan.allocations {
                rate_weighted_time_per_bit += share * a.fraction / a.option.rate.bps().bps();
            }
        }

        // Bits until the first battery would die under this blended cost.
        let bits_possible = (b1.remaining().joules() / c1).min(b2.remaining().joules() / c2);
        let bits_epoch = bits_possible * EPOCH_FRACTION;
        if !bits_epoch.is_finite() || bits_epoch < 1.0 {
            // Drain whatever remains and stop.
            let final_bits = bits_possible.max(0.0);
            drain(&mut b1, &mut b2, final_bits, c1, c2, &mut report);
            attribute_bits(&plans, final_bits, &mut report);
            report.duration += Seconds::new(final_bits * rate_weighted_time_per_bit);
            emit_epoch(&plans, final_bits, c1, c2, report.duration);
            break;
        }

        drain(&mut b1, &mut b2, bits_epoch, c1, c2, &mut report);
        attribute_bits(&plans, bits_epoch, &mut report);
        report.duration += Seconds::new(bits_epoch * rate_weighted_time_per_bit);
        report.switches += bits_epoch * switches_per_bit_total;
        emit_epoch(&plans, bits_epoch, c1, c2, report.duration);
    }
    if b1.is_dead() || b2.is_dead() {
        telemetry::emit(telemetry::Event::SessionDead {
            at: report.duration,
            track: telemetry::Track::Pair(0),
            reason: telemetry::DeathReason::BatteryDead,
        });
    }
    report
}

/// Telemetry for one integrated epoch: the bits each braid allocation
/// carried (at the epoch's end time) and the energy both devices paid,
/// mirroring what [`drain`] and [`attribute_bits`] just committed.
fn emit_epoch(plans: &[(Role, f64, OffloadPlan)], bits: f64, c1: f64, c2: f64, at: Seconds) {
    if !telemetry::enabled() {
        return;
    }
    let track = telemetry::Track::Pair(0);
    for (_, share, plan) in plans {
        for a in &plan.allocations {
            telemetry::emit(telemetry::Event::QuantumDelivered {
                at,
                track,
                mode: a.option.mode.into(),
                rate: a.option.rate.into(),
                bits: bits * share * a.fraction,
            });
        }
    }
    telemetry::emit(telemetry::Event::EnergyDebit {
        at,
        track: telemetry::Track::Device(0),
        joules: Joules::new(bits * c1),
    });
    telemetry::emit(telemetry::Event::EnergyDebit {
        at,
        track: telemetry::Track::Device(1),
        joules: Joules::new(bits * c2),
    });
}

/// Run a Braidio transfer while the pair moves along a mobility trace.
///
/// Epochs are additionally capped at `trace_interval` of link time so the
/// simulator samples the trace densely enough to see regime transitions;
/// `setup.distance` is ignored (the trace supplies it). Size the batteries
/// so the transfer spans the motion you care about — a full laptop battery
/// takes weeks of link time, which would quantize any realistic walk away.
pub fn simulate_mobile_transfer(
    setup: &TransferSetup,
    trace: &mut dyn crate::mobility::MobilityTrace,
    trace_interval: Seconds,
) -> SimReport {
    assert!(trace_interval.seconds() > 0.0);
    let mut b1 = Battery::new(setup.e1);
    let mut b2 = Battery::new(setup.e2);
    let mut report = SimReport::empty();
    const MAX_EPOCHS: usize = 200_000;
    const EPOCH_FRACTION: f64 = 0.1;

    while !b1.is_dead() && !b2.is_dead() && report.epochs < MAX_EPOCHS {
        report.epochs += 1;
        let d = trace.distance_at(report.duration);
        let opts = options_at(&setup.ch, d);
        let Some(plan) = solve_memo(&opts, b1.remaining(), b2.remaining()) else {
            // Out of range right now: idle through one trace interval.
            report.duration += trace_interval;
            continue;
        };
        let c1 = plan.tx_cost.joules_per_bit();
        let c2 = plan.rx_cost.joules_per_bit();
        let time_per_bit: f64 = plan
            .allocations
            .iter()
            .map(|a| a.fraction / a.option.rate.bps().bps())
            .sum();
        let bits_possible = (b1.remaining().joules() / c1).min(b2.remaining().joules() / c2);
        let bits_by_time = trace_interval.seconds() / time_per_bit;
        let bits_epoch = (bits_possible * EPOCH_FRACTION).min(bits_by_time);
        if !bits_epoch.is_finite() || bits_epoch < 1.0 {
            drain(
                &mut b1,
                &mut b2,
                bits_possible.max(0.0),
                c1,
                c2,
                &mut report,
            );
            report.duration += Seconds::new(bits_possible.max(0.0) * time_per_bit);
            break;
        }
        drain(&mut b1, &mut b2, bits_epoch, c1, c2, &mut report);
        for a in &plan.allocations {
            report.add_mode_bits(a.option.mode, bits_epoch * a.fraction);
        }
        report.duration += Seconds::new(bits_epoch * time_per_bit);
    }
    report
}

fn drain(b1: &mut Battery, b2: &mut Battery, bits: f64, c1: f64, c2: f64, report: &mut SimReport) {
    let d1 = Joules::new(bits * c1);
    let d2 = Joules::new(bits * c2);
    b1.draw(d1);
    b2.draw(d2);
    report.e1_spent += d1;
    report.e2_spent += d2;
    report.bits += bits;
}

fn attribute_bits(plans: &[(Role, f64, OffloadPlan)], bits: f64, report: &mut SimReport) {
    for (_, share, plan) in plans {
        for a in &plan.allocations {
            report.add_mode_bits(a.option.mode, bits * share * a.fraction);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain(e1_wh: f64, e2_wh: f64) -> f64 {
        let braidio = simulate_transfer(&TransferSetup::new(e1_wh, e2_wh, Policy::Braidio));
        let bt = simulate_transfer(&TransferSetup::new(e1_wh, e2_wh, Policy::Bluetooth));
        braidio.bits / bt.bits
    }

    #[test]
    fn equal_batteries_gain_is_1_43() {
        // Fig. 15's diagonal.
        let g = gain(1.0, 1.0);
        assert!((g - 1.43).abs() < 0.02, "diagonal gain {g}");
    }

    #[test]
    fn epoch_loop_populates_the_shared_ber_surface() {
        // The epoch loop reaches BER through `Characterization::ber`,
        // which answers from the process-shared strict surfaces — so a
        // transfer must leave solved SNR points behind, and a repeat run
        // (answered from the memo) must produce identical results.
        use braidio_phy::surface::{shared, BerModel};
        use braidio_units::BitsPerSecond;
        let setup = TransferSetup::new(1.0, 1.0, Policy::Braidio);
        let first = simulate_transfer(&setup);
        let ook = shared(BerModel::NoncoherentOok, BitsPerSecond::KBPS_100);
        assert!(
            ook.memoized() > 0,
            "the epoch loop should have solved OOK BER points"
        );
        let again = simulate_transfer(&setup);
        assert_eq!(first.bits.to_bits(), again.bits.to_bits());
        assert_eq!(
            first.duration.seconds().to_bits(),
            again.duration.seconds().to_bits()
        );
    }

    #[test]
    fn asymmetric_gains_grow_to_hundreds() {
        // Fuel Band (0.26 Wh) <-> MacBook Pro 15 (99.5 Wh): the paper's
        // corners are 299x/397x; the model must land in the same decade.
        let up = gain(0.26, 99.5);
        let down = gain(99.5, 0.26);
        assert!(up > 100.0, "small->large gain {up}");
        assert!(down > 100.0, "large->small gain {down}");
        assert!(down > up, "passive direction should win: {down} vs {up}");
    }

    #[test]
    fn gain_monotone_in_asymmetry() {
        let mut prev = 0.0;
        for ratio in [1.0, 3.0, 10.0, 30.0, 100.0, 300.0] {
            let g = gain(1.0, ratio);
            assert!(g > prev, "ratio {ratio}: gain {g} after {prev}");
            prev = g;
        }
    }

    #[test]
    fn braidio_beats_best_single_mode() {
        // Fig. 16: switching between modes buys up to ~78% over the best
        // single mode, and never loses.
        for (e1, e2) in [(1.0, 1.0), (6.55, 11.1), (0.26, 99.5), (13.3, 6.55)] {
            let braidio = simulate_transfer(&TransferSetup::new(e1, e2, Policy::Braidio));
            let best = simulate_transfer(&TransferSetup::new(e1, e2, Policy::BestSingleMode));
            let g = braidio.bits / best.bits;
            assert!(
                g >= 0.999,
                "braidio must not lose to a single mode: {e1}/{e2} -> {g}"
            );
            assert!(g < 2.5, "sanity: {g}");
        }
    }

    #[test]
    fn fig16_style_gain_between_phones() {
        // iPhone 6S -> iPhone 6 Plus: the paper reports 1.78x over the best
        // single mode. Same ballpark expected.
        let braidio = simulate_transfer(&TransferSetup::new(6.55, 11.1, Policy::Braidio));
        let best = simulate_transfer(&TransferSetup::new(6.55, 11.1, Policy::BestSingleMode));
        let g = braidio.bits / best.bits;
        assert!((1.3..=2.0).contains(&g), "gain over best single {g}");
    }

    #[test]
    fn bidirectional_beats_unidirectional_when_asymmetric() {
        // Fig. 17 vs Fig. 15: "results are a bit better than the
        // unidirectional case" under high asymmetry.
        let uni = gain(0.26, 99.5);
        let bi = {
            let b = simulate_transfer(
                &TransferSetup::new(0.26, 99.5, Policy::Braidio)
                    .with_traffic(Traffic::Bidirectional),
            );
            let bt = simulate_transfer(
                &TransferSetup::new(0.26, 99.5, Policy::Bluetooth)
                    .with_traffic(Traffic::Bidirectional),
            );
            b.bits / bt.bits
        };
        assert!(bi > uni * 0.95, "bi {bi} vs uni {uni}");
    }

    #[test]
    fn both_batteries_die_together_under_braidio() {
        let r = simulate_transfer(&TransferSetup::new(10.0, 1.0, Policy::Braidio));
        let e1_left = Joules::from_watt_hours(10.0) - r.e1_spent;
        let e2_left = Joules::from_watt_hours(1.0) - r.e2_spent;
        // Both ends drained to (nearly) nothing: power-proportional.
        assert!(e1_left.joules() < 0.01 * 3600.0 * 10.0, "e1 left {e1_left}");
        assert!(e2_left.joules() < 0.01 * 3600.0, "e2 left {e2_left}");
    }

    #[test]
    fn out_of_range_moves_zero_bits() {
        let setup = TransferSetup::new(1.0, 1.0, Policy::Braidio).at_distance(Meters::new(2000.0));
        let r = simulate_transfer(&setup);
        assert_eq!(r.bits, 0.0);
    }

    #[test]
    fn beyond_backscatter_range_small_to_large_equals_bluetooth() {
        // Fig. 18: once backscatter dies (> 2.4 m), a small transmitter
        // cannot offload its carrier, so Braidio ≈ Bluetooth.
        let setup = TransferSetup::new(0.26, 99.5, Policy::Braidio).at_distance(Meters::new(3.0));
        let braidio = simulate_transfer(&setup);
        let bt = simulate_transfer(
            &TransferSetup::new(0.26, 99.5, Policy::Bluetooth).at_distance(Meters::new(3.0)),
        );
        let g = braidio.bits / bt.bits;
        assert!((0.95..=1.1).contains(&g), "gain {g}");
    }

    #[test]
    fn beyond_backscatter_range_large_to_small_still_wins() {
        // ... while the passive-receiver direction keeps double-digit gains.
        let setup = TransferSetup::new(99.5, 0.26, Policy::Braidio).at_distance(Meters::new(3.0));
        let braidio = simulate_transfer(&setup);
        let bt = simulate_transfer(
            &TransferSetup::new(99.5, 0.26, Policy::Bluetooth).at_distance(Meters::new(3.0)),
        );
        let g = braidio.bits / bt.bits;
        assert!(g > 10.0, "gain {g}");
    }

    #[test]
    fn mode_shares_reflect_asymmetry() {
        // Large transmitter battery -> passive-heavy braid.
        let r = simulate_transfer(&TransferSetup::new(99.5, 0.26, Policy::Braidio));
        assert!(r.mode_share(Mode::Passive) > 0.9, "{:?}", r.mode_bits);
        // Small transmitter battery -> backscatter-heavy braid.
        let r = simulate_transfer(&TransferSetup::new(0.26, 99.5, Policy::Braidio));
        assert!(r.mode_share(Mode::Backscatter) > 0.9, "{:?}", r.mode_bits);
    }

    #[test]
    fn mobile_transfer_adapts_to_the_walk() {
        use crate::mobility::{LinearWalk, Static};
        // Tiny batteries so the transfer spans the walk: 3 mWh and 30 mWh.
        let setup = TransferSetup::new(0.003, 0.03, Policy::Braidio);
        // Static pin at 0.5 m for reference.
        let mut near = Static(Meters::new(0.5));
        let r_near = simulate_mobile_transfer(&setup, &mut near, Seconds::new(1.0));
        // A walk out to 3 m (past the backscatter edge) over 100 s.
        let mut walk = LinearWalk {
            start: Meters::new(0.5),
            end: Meters::new(3.0),
            duration: Seconds::new(100.0),
        };
        let r_walk = simulate_mobile_transfer(&setup, &mut walk, Seconds::new(1.0));
        // Both finish the batteries; the walking pair moves fewer bits
        // because the cheap backscatter mode disappears mid-transfer.
        assert!(r_walk.bits > 0.0);
        assert!(
            r_walk.bits < r_near.bits,
            "walk {} vs near {}",
            r_walk.bits,
            r_near.bits
        );
        // The walk's braid includes a backscatter phase early on...
        assert!(r_walk.mode_share(Mode::Backscatter) > 0.0);
        // ...but less of it than the static near pair.
        assert!(r_walk.mode_share(Mode::Backscatter) < r_near.mode_share(Mode::Backscatter));
    }

    #[test]
    fn mobile_static_trace_matches_fixed_simulation() {
        use crate::mobility::Static;
        let setup = TransferSetup::new(0.001, 0.001, Policy::Braidio);
        let fixed = simulate_transfer(&setup);
        let mut trace = Static(Meters::new(0.5));
        let mobile = simulate_mobile_transfer(&setup, &mut trace, Seconds::new(1e9));
        let ratio = mobile.bits / fixed.bits;
        // The mobile path charges no switching overhead, so it lands within
        // a percent above the fixed simulation.
        assert!((0.99..=1.02).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn out_of_range_walk_idles_without_panic() {
        use crate::mobility::Static;
        let setup = TransferSetup::new(0.001, 0.001, Policy::Braidio);
        let mut far = Static(Meters::new(2000.0));
        let r = simulate_mobile_transfer(&setup, &mut far, Seconds::new(1.0));
        assert_eq!(r.bits, 0.0);
        assert!(r.duration > Seconds::ZERO, "time still passes while idle");
    }

    #[test]
    fn duration_accounting_is_positive_and_consistent() {
        let r = simulate_transfer(&TransferSetup::new(1.0, 1.0, Policy::Braidio));
        assert!(r.duration > Seconds::ZERO);
        // All modes run at 1 Mbps here, so duration = bits / 1 Mbps.
        let expected = r.bits / 1e6;
        assert!(
            (r.duration.seconds() / expected - 1.0).abs() < 1e-6,
            "duration {} vs {expected}",
            r.duration
        );
    }

    #[test]
    fn switching_overhead_is_charged_but_small() {
        let with = simulate_transfer(&TransferSetup::new(1.0, 1.0, Policy::Braidio));
        assert!(with.switches > 0.0);
        // The braid alternates, but Table 5 costs shave well under 5%.
        let ideal_plan = crate::offload::solve_at(
            &Characterization::braidio(),
            Meters::new(0.5),
            Joules::from_watt_hours(1.0),
            Joules::from_watt_hours(1.0),
        )
        .unwrap();
        let ideal_bits =
            ideal_plan.bits_until_death(Joules::from_watt_hours(1.0), Joules::from_watt_hours(1.0));
        let loss = 1.0 - with.bits / ideal_bits;
        assert!((0.0..0.01).contains(&loss), "switching loss {loss}");
    }
}
