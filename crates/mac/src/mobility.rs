//! Mobility traces: time-varying separation for dynamic-link experiments.
//!
//! §4.2: "the wireless link is dynamic, particularly in a mobile
//! environment. Braidio simply falls back to the active mode if the current
//! operating mode is performing poorly … Braidio also periodically
//! re-computes the ratio of using different modes depending on observed
//! dynamics." A trace of distances over time is what drives those
//! dynamics; this module provides deterministic generators for the
//! scenarios the examples and tests use.

use braidio_units::{Meters, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A time-indexed separation trace.
pub trait MobilityTrace {
    /// The pair's separation at virtual time `t`.
    fn distance_at(&mut self, t: Seconds) -> Meters;
}

/// A static pair (the Figs. 15–17 assumption).
#[derive(Debug, Clone, Copy)]
pub struct Static(pub Meters);

impl MobilityTrace for Static {
    fn distance_at(&mut self, _t: Seconds) -> Meters {
        self.0
    }
}

/// A linear walk from `start` to `end` over `duration`, then hold.
#[derive(Debug, Clone, Copy)]
pub struct LinearWalk {
    /// Separation at t = 0.
    pub start: Meters,
    /// Separation at `duration` and after.
    pub end: Meters,
    /// Walk duration.
    pub duration: Seconds,
}

impl MobilityTrace for LinearWalk {
    fn distance_at(&mut self, t: Seconds) -> Meters {
        let f = (t / self.duration).clamp(0.0, 1.0);
        Meters::new(self.start.meters() + f * (self.end.meters() - self.start.meters()))
    }
}

/// A bounded random walk: every `step_interval` the separation moves by a
/// uniform step in `[-step, +step]`, reflected at `[min, max]`.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    /// Lower bound on separation.
    pub min: Meters,
    /// Upper bound on separation.
    pub max: Meters,
    /// Maximum per-step movement.
    pub step: Meters,
    /// Time between steps.
    pub step_interval: Seconds,
    rng: StdRng,
    current: Meters,
    next_step_at: Seconds,
}

impl RandomWalk {
    /// A walk starting at `start`, deterministically seeded.
    pub fn new(
        start: Meters,
        min: Meters,
        max: Meters,
        step: Meters,
        interval: Seconds,
        seed: u64,
    ) -> Self {
        assert!(min <= start && start <= max, "start must lie in [min, max]");
        assert!(step.meters() > 0.0 && interval.seconds() > 0.0);
        RandomWalk {
            min,
            max,
            step,
            step_interval: interval,
            rng: StdRng::seed_from_u64(seed),
            current: start,
            next_step_at: interval,
        }
    }

    /// The paper-flavoured default: wandering between 0.3 m and 4 m on a
    /// 1 s cadence with ≤0.5 m steps (a person drifting around a room).
    pub fn room(seed: u64) -> Self {
        RandomWalk::new(
            Meters::new(1.0),
            Meters::new(0.3),
            Meters::new(4.0),
            Meters::new(0.5),
            Seconds::new(1.0),
            seed,
        )
    }
}

impl MobilityTrace for RandomWalk {
    fn distance_at(&mut self, t: Seconds) -> Meters {
        while t >= self.next_step_at {
            let delta = self
                .rng
                .random_range(-self.step.meters()..=self.step.meters());
            let mut next = self.current.meters() + delta;
            // Reflect at the bounds.
            if next > self.max.meters() {
                next = 2.0 * self.max.meters() - next;
            }
            if next < self.min.meters() {
                next = 2.0 * self.min.meters() - next;
            }
            self.current = Meters::new(next.clamp(self.min.meters(), self.max.meters()));
            self.next_step_at += self.step_interval;
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_trace_is_constant() {
        let mut s = Static(Meters::new(1.5));
        assert_eq!(s.distance_at(Seconds::ZERO), Meters::new(1.5));
        assert_eq!(s.distance_at(Seconds::new(1e6)), Meters::new(1.5));
    }

    #[test]
    fn linear_walk_interpolates_and_holds() {
        let mut w = LinearWalk {
            start: Meters::new(0.5),
            end: Meters::new(4.5),
            duration: Seconds::new(10.0),
        };
        assert_eq!(w.distance_at(Seconds::ZERO), Meters::new(0.5));
        assert!((w.distance_at(Seconds::new(5.0)).meters() - 2.5).abs() < 1e-12);
        assert_eq!(w.distance_at(Seconds::new(10.0)), Meters::new(4.5));
        assert_eq!(w.distance_at(Seconds::new(100.0)), Meters::new(4.5));
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let mut w = RandomWalk::room(7);
        for i in 0..10_000 {
            let d = w.distance_at(Seconds::new(i as f64 * 0.5));
            assert!(
                d >= Meters::new(0.3) && d <= Meters::new(4.0),
                "{d} at step {i}"
            );
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let mut w = RandomWalk::room(3);
        let d0 = w.distance_at(Seconds::ZERO);
        let mut moved = false;
        for i in 1..100 {
            if w.distance_at(Seconds::new(i as f64)) != d0 {
                moved = true;
                break;
            }
        }
        assert!(moved);
    }

    #[test]
    fn random_walk_deterministic_per_seed() {
        let sample = |seed| {
            let mut w = RandomWalk::room(seed);
            (0..50)
                .map(|i| w.distance_at(Seconds::new(i as f64)).meters())
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(9), sample(9));
        assert_ne!(sample(9), sample(10));
    }

    #[test]
    fn time_can_be_queried_monotonically_between_steps() {
        let mut w = RandomWalk::room(1);
        let a = w.distance_at(Seconds::new(0.1));
        let b = w.distance_at(Seconds::new(0.2));
        assert_eq!(a, b, "no step boundary crossed");
    }
}
