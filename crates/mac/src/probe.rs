//! Link probing (§4.2).
//!
//! "The two end-points use probe packets over the two links to determine
//! the SNR and bitrate parameters, and exchange this information." The
//! prober sends a short probe in each candidate mode, measures SNR (with
//! optional shadowing to emulate a real room), and reports the best
//! operational bitrate per mode. The MAC charges the probe's airtime and
//! energy to both sides.

use crate::offload::LinkOption;
use braidio_radio::characterization::{Characterization, Rate, OPERATIONAL_BER};
use braidio_radio::Mode;
use braidio_rfsim::fading::Shadowing;
use braidio_units::{Decibels, Joules, Meters, Seconds};

/// Size of one probe exchange, bits (probe + response at the probed rate).
pub const PROBE_BITS: f64 = 256.0;

/// Result of probing one mode.
#[derive(Debug, Clone, Copy)]
pub struct ModeProbe {
    /// The probed mode.
    pub mode: Mode,
    /// Best operational rate, if any.
    pub best_rate: Option<Rate>,
    /// Measured SNR at that rate (or at 10 kbps if nothing worked).
    pub snr: Decibels,
}

/// Outcome of a full probing round. One fixed-size slot per mode keeps the
/// report `Copy` and a probe round heap-free — the fleet engine probes on
/// every planning wave.
#[derive(Debug, Clone, Copy)]
pub struct ProbeReport {
    /// Per-mode results in `Mode::ALL` order.
    pub probes: [ModeProbe; Mode::ALL.len()],
    /// Time spent probing.
    pub airtime: Seconds,
    /// Energy spent at the initiating side.
    pub energy_initiator: Joules,
    /// Energy spent at the responding side.
    pub energy_responder: Joules,
}

impl ProbeReport {
    /// The options the offload solver should consider.
    pub fn options(&self, ch: &Characterization) -> Vec<LinkOption> {
        self.probes
            .iter()
            .filter_map(|p| {
                let rate = p.best_rate?;
                let pp = ch.power(p.mode, rate)?;
                Some(LinkOption {
                    mode: p.mode,
                    rate,
                    tx_cost: pp.tx_energy_per_bit(),
                    rx_cost: pp.rx_energy_per_bit(),
                })
            })
            .collect()
    }
}

/// A prober with optional per-probe shadowing.
#[derive(Debug)]
pub struct LinkProber {
    shadowing: Option<Shadowing>,
}

impl LinkProber {
    /// An ideal prober (measures the model SNR exactly).
    pub fn ideal() -> Self {
        LinkProber { shadowing: None }
    }

    /// A prober whose measurements wobble with log-normal shadowing of
    /// `sigma_db`, deterministically seeded.
    pub fn with_shadowing(sigma_db: f64, seed: u64) -> Self {
        LinkProber {
            shadowing: Some(Shadowing::new(sigma_db, seed)),
        }
    }

    /// Probe all modes at distance `d`.
    pub fn probe(&mut self, ch: &Characterization, d: Meters) -> ProbeReport {
        let mut probes = [ModeProbe {
            mode: Mode::Active,
            best_rate: None,
            snr: Decibels::ZERO,
        }; Mode::ALL.len()];
        let mut airtime = Seconds::ZERO;
        let mut e_init = Joules::ZERO;
        let mut e_resp = Joules::ZERO;

        for (slot, mode) in probes.iter_mut().zip(Mode::ALL) {
            let wobble = match &mut self.shadowing {
                Some(s) => s.sample(),
                None => Decibels::ZERO,
            };
            // Find the fastest rate whose (shadowed) SNR still clears the
            // operational threshold.
            let mut best: Option<(Rate, Decibels)> = None;
            let mut last_snr = Decibels::new(f64::NEG_INFINITY);
            for rate in Rate::ALL.into_iter().rev() {
                if ch.power(mode, rate).is_none() {
                    continue;
                }
                let snr = ch.snr(mode, rate, d) + wobble;
                last_snr = snr;
                let ber = match mode {
                    Mode::Active => braidio_phy::ber::ber_coherent(snr.linear()),
                    _ => braidio_phy::ber::ber_ook_noncoherent_fast(snr.linear()),
                };
                if ber <= OPERATIONAL_BER {
                    best = Some((rate, snr));
                    break;
                }
            }
            // Charge the probe exchange: at the probed (or slowest) rate.
            let rate = best.map(|(r, _)| r).unwrap_or(Rate::Kbps10);
            if let Some(pp) = ch.power(mode, rate).or_else(|| ch.power(mode, Rate::Mbps1)) {
                let t = pp.rate.bps().time_for_bits(PROBE_BITS);
                airtime += t;
                e_init += pp.tx * t;
                e_resp += pp.rx * t;
            }
            *slot = ModeProbe {
                mode,
                best_rate: best.map(|(r, _)| r),
                snr: best.map(|(_, s)| s).unwrap_or(last_snr),
            };
        }
        ProbeReport {
            probes,
            airtime,
            energy_initiator: e_init,
            energy_responder: e_resp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Characterization {
        Characterization::braidio()
    }

    #[test]
    fn ideal_probe_matches_characterization() {
        let c = ch();
        let mut p = LinkProber::ideal();
        let report = p.probe(&c, Meters::new(0.5));
        for probe in &report.probes {
            assert_eq!(
                probe.best_rate,
                c.max_rate(probe.mode, Meters::new(0.5)),
                "{}",
                probe.mode
            );
        }
    }

    #[test]
    fn probe_options_feed_the_solver() {
        let c = ch();
        let mut p = LinkProber::ideal();
        let report = p.probe(&c, Meters::new(0.3));
        let opts = report.options(&c);
        assert_eq!(opts.len(), 3);
    }

    #[test]
    fn probe_costs_are_charged() {
        let c = ch();
        let mut p = LinkProber::ideal();
        let report = p.probe(&c, Meters::new(0.3));
        assert!(report.airtime > Seconds::ZERO);
        assert!(report.energy_initiator > Joules::ZERO);
        assert!(report.energy_responder > Joules::ZERO);
    }

    #[test]
    fn far_probe_loses_backscatter() {
        let c = ch();
        let mut p = LinkProber::ideal();
        let report = p.probe(&c, Meters::new(3.0));
        let bs = report
            .probes
            .iter()
            .find(|x| x.mode == Mode::Backscatter)
            .unwrap();
        assert!(bs.best_rate.is_none());
        assert_eq!(report.options(&c).len(), 2);
    }

    #[test]
    fn shadowed_probe_is_deterministic_and_can_differ() {
        let c = ch();
        // Same seed -> same report.
        let r1 = LinkProber::with_shadowing(6.0, 7).probe(&c, Meters::new(1.7));
        let r2 = LinkProber::with_shadowing(6.0, 7).probe(&c, Meters::new(1.7));
        for (a, b) in r1.probes.iter().zip(&r2.probes) {
            assert_eq!(a.best_rate, b.best_rate);
        }
        // Near a rate boundary, some seed disagrees with the ideal prober.
        let ideal = LinkProber::ideal().probe(&c, Meters::new(1.7));
        let mut any_diff = false;
        for seed in 0..40u64 {
            let r = LinkProber::with_shadowing(6.0, seed).probe(&c, Meters::new(1.7));
            if r.probes
                .iter()
                .zip(&ideal.probes)
                .any(|(a, b)| a.best_rate != b.best_rate)
            {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "6 dB shadowing never moved a rate decision?");
    }
}
