//! The carrier-offload control protocol as an explicit state machine.
//!
//! §4.2 describes a control loop: the endpoints first *exchange battery
//! status* over the active radio, then *probe* the candidate links, then
//! *plan* (Eq. 1) and *braid*; poor performance *falls back* to active and
//! re-probes, and the plan is *recomputed* periodically. The packet-level
//! engine in `braidio-core::live` implements the loop operationally; this
//! module pins the protocol itself down as a typed transition system so the
//! control flow can be tested — and reasoned about — independently of any
//! radio model.

use braidio_radio::Mode;

/// Protocol states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Just associated; nothing known about the peer.
    Init,
    /// Exchanging battery status over the active radio (§4.2 step 1).
    ExchangingStatus,
    /// Sending probe packets over the candidate links (§4.2 step 2).
    Probing,
    /// Braiding data under a plan.
    Braiding,
    /// Fallen back to pure active mode after link failures, pending a
    /// re-probe.
    Fallback,
    /// The link is dead (out of range or a battery exhausted).
    Dead,
}

/// Events driving the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Association established with the peer.
    Associated,
    /// Battery levels exchanged successfully.
    StatusExchanged,
    /// Probing finished and at least one mode is viable.
    ProbesOk,
    /// Probing finished and *no* mode closes the link.
    ProbesEmpty,
    /// A braided packet was delivered.
    PacketDelivered,
    /// Consecutive failures crossed the fallback threshold.
    LinkDegraded,
    /// The periodic re-plan timer fired (or SNR/loss changed materially).
    RecomputeDue,
    /// An endpoint's battery is exhausted.
    BatteryDead,
}

/// What the radio should do after a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Do nothing.
    None,
    /// Exchange battery status over the active link.
    SendStatus,
    /// Send probe packets over every candidate mode.
    SendProbes,
    /// Solve Eq. 1 and install the braid schedule.
    InstallPlan,
    /// Pin the radio to the given mode (the fallback safety net).
    PinMode(Mode),
    /// Tear the session down.
    Shutdown,
}

/// The protocol machine.
#[derive(Debug, Clone)]
pub struct OffloadFsm {
    state: State,
    transitions: u64,
}

impl OffloadFsm {
    /// A fresh session.
    pub fn new() -> Self {
        OffloadFsm {
            state: State::Init,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Total accepted transitions.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Feed an event; returns the action to perform, or `Err` with the
    /// rejected event if it is not meaningful in the current state (the
    /// caller treats that as a protocol violation worth logging).
    pub fn on(&mut self, event: Event) -> Result<Action, Event> {
        use Action as A;
        use Event as E;
        use State as S;
        let (next, action) = match (self.state, event) {
            (S::Init, E::Associated) => (S::ExchangingStatus, A::SendStatus),
            (S::ExchangingStatus, E::StatusExchanged) => (S::Probing, A::SendProbes),
            (S::Probing, E::ProbesOk) => (S::Braiding, A::InstallPlan),
            (S::Probing, E::ProbesEmpty) => (S::Dead, A::Shutdown),
            (S::Braiding, E::PacketDelivered) => (S::Braiding, A::None),
            (S::Braiding, E::LinkDegraded) => (S::Fallback, A::PinMode(Mode::Active)),
            (S::Braiding, E::RecomputeDue) => (S::Probing, A::SendProbes),
            (S::Fallback, E::RecomputeDue) => (S::Probing, A::SendProbes),
            (S::Fallback, E::PacketDelivered) => (S::Fallback, A::None),
            // Battery death ends the session from any non-dead state —
            // including Init: an open-system tag can brown out while still
            // waiting, undiscovered, on its wake-up detector.
            (
                S::Init | S::ExchangingStatus | S::Probing | S::Braiding | S::Fallback,
                E::BatteryDead,
            ) => (S::Dead, A::Shutdown),
            (state, event) => {
                debug_assert!(state == self.state);
                return Err(event);
            }
        };
        if next != self.state || !matches!(action, A::None) {
            self.transitions += 1;
        }
        self.state = next;
        Ok(action)
    }

    /// Is the session over?
    pub fn is_dead(&self) -> bool {
        self.state == State::Dead
    }
}

impl Default for OffloadFsm {
    fn default() -> Self {
        OffloadFsm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bring_up() -> OffloadFsm {
        let mut f = OffloadFsm::new();
        assert_eq!(f.on(Event::Associated).unwrap(), Action::SendStatus);
        assert_eq!(f.on(Event::StatusExchanged).unwrap(), Action::SendProbes);
        assert_eq!(f.on(Event::ProbesOk).unwrap(), Action::InstallPlan);
        assert_eq!(f.state(), State::Braiding);
        f
    }

    #[test]
    fn happy_path_reaches_braiding() {
        let _ = bring_up();
    }

    #[test]
    fn degradation_falls_back_to_active_then_reprobes() {
        let mut f = bring_up();
        assert_eq!(
            f.on(Event::LinkDegraded).unwrap(),
            Action::PinMode(Mode::Active)
        );
        assert_eq!(f.state(), State::Fallback);
        // Packets can still flow in fallback.
        assert_eq!(f.on(Event::PacketDelivered).unwrap(), Action::None);
        // The recompute timer resumes the full protocol.
        assert_eq!(f.on(Event::RecomputeDue).unwrap(), Action::SendProbes);
        assert_eq!(f.state(), State::Probing);
        assert_eq!(f.on(Event::ProbesOk).unwrap(), Action::InstallPlan);
    }

    #[test]
    fn empty_probes_kill_the_session() {
        let mut f = OffloadFsm::new();
        f.on(Event::Associated).unwrap();
        f.on(Event::StatusExchanged).unwrap();
        assert_eq!(f.on(Event::ProbesEmpty).unwrap(), Action::Shutdown);
        assert!(f.is_dead());
    }

    #[test]
    fn battery_death_ends_any_live_state() {
        for prep in 0..4 {
            let mut f = OffloadFsm::new();
            f.on(Event::Associated).unwrap();
            if prep >= 1 {
                f.on(Event::StatusExchanged).unwrap();
            }
            if prep >= 2 {
                f.on(Event::ProbesOk).unwrap();
            }
            if prep >= 3 {
                f.on(Event::LinkDegraded).unwrap();
            }
            assert_eq!(f.on(Event::BatteryDead).unwrap(), Action::Shutdown);
            assert!(f.is_dead());
        }
    }

    #[test]
    fn nonsense_events_are_rejected_not_absorbed() {
        let mut f = OffloadFsm::new();
        assert_eq!(f.on(Event::PacketDelivered), Err(Event::PacketDelivered));
        assert_eq!(f.state(), State::Init);
        let mut f = bring_up();
        assert_eq!(f.on(Event::Associated), Err(Event::Associated));
        assert_eq!(f.state(), State::Braiding);
    }

    #[test]
    fn battery_death_ends_init_too() {
        // An undiscovered open-system tag can brown out before it ever
        // associates; Init must accept the death rather than reject it.
        let mut f = OffloadFsm::new();
        assert_eq!(f.on(Event::BatteryDead).unwrap(), Action::Shutdown);
        assert!(f.is_dead());
    }

    #[test]
    fn dead_is_terminal() {
        let mut f = OffloadFsm::new();
        f.on(Event::Associated).unwrap();
        f.on(Event::BatteryDead).unwrap();
        for e in [
            Event::Associated,
            Event::ProbesOk,
            Event::RecomputeDue,
            Event::PacketDelivered,
        ] {
            assert!(f.on(e).is_err());
            assert!(f.is_dead());
        }
    }

    #[test]
    fn periodic_recompute_loops_through_probing() {
        let mut f = bring_up();
        for _ in 0..5 {
            assert_eq!(f.on(Event::RecomputeDue).unwrap(), Action::SendProbes);
            assert_eq!(f.on(Event::ProbesOk).unwrap(), Action::InstallPlan);
        }
        assert_eq!(f.state(), State::Braiding);
    }
}
