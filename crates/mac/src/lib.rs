//! Energy-aware carrier offload — the Braidio contribution (§4).
//!
//! * [`offload`] — the Eq. 1 optimizer: pick per-mode fractions so the two
//!   endpoints drain in proportion to their batteries, maximizing total
//!   bits. Solved exactly by vertex enumeration (the optimum provably uses
//!   at most two modes, which is also why the paper's optimal points lie on
//!   line BC of Fig. 9).
//! * [`regimes`] — the Fig. 8 operating regimes: which modes are viable at
//!   a given separation.
//! * [`probe`] — the probe/measurement step that discovers per-mode SNR and
//!   best bitrate before planning.
//! * [`scheduler`] — the braided packet-by-packet mode sequence (§4.2's
//!   "Active-Active-Passive-Backscatter (repeated)"), with fallback to
//!   active on link failures.
//! * [`arq`] — stop-and-wait retransmission math over the lossy regimes.
//! * [`coexistence`] — two pairs in one room: why in-band neighbours must
//!   coordinate (the Table 3 in-band weakness, quantified).
//! * [`mobility`] — deterministic separation traces (static, linear walk,
//!   bounded random walk) for dynamic-link experiments.
//! * [`fsm`] — the §4.2 control protocol as a typed state machine
//!   (status exchange → probe → plan → braid → fallback/recompute).
//! * [`duty`] — daily sensor workloads: idle (wake-up receiver) power plus
//!   per-bit transfer cost as a closed-form lifetime budget.
//! * [`wakeup`] — the always-on passive wake-up receiver vs duty-cycled
//!   listening (the "interesting option" §4 notes the architecture
//!   enables).
//! * [`sim`] — the link simulator of §6.3: drains two batteries through a
//!   traffic pattern under a policy (Braidio, Bluetooth baseline, or a
//!   single pinned mode) and reports total bits moved — the engine behind
//!   Figs. 15–18.

#![warn(missing_docs)]

pub mod arq;
pub mod coexistence;
pub mod duty;
pub mod fsm;
pub mod mobility;
pub mod offload;
pub mod probe;
pub mod regimes;
pub mod scheduler;
pub mod sim;
pub mod wakeup;

pub use offload::{solve, LinkOption, OffloadPlan};
pub use regimes::Regime;
pub use sim::{simulate_transfer, Policy, SimReport, Traffic, TransferSetup};
