//! Value-generation strategies: ranges, `any`, tuples, `prop_map`, `Just`.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The `any::<T>()` strategy object.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// An arbitrary value of `T` (uniform over the type's domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, i8, i16, i32);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        use rand::RngCore;
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> usize {
        use rand::RngCore;
        rng.next_u64() as usize
    }
}
