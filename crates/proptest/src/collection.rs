//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.random_range(self.len.clone())
        };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector of values from `element`, with length in `len`
/// (half-open, as upstream's `SizeRange` treats `a..b`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}
