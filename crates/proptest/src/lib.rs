//! Vendored stand-in for the subset of the `proptest` API used by this
//! workspace's property tests.
//!
//! The build environment has no crates.io access, so this crate implements
//! a small random-testing harness with the same surface syntax:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * range strategies (`0.0f64..1.0`, `1u8..=255`, ...), [`any`],
//!   tuple strategies, [`Strategy::prop_map`], [`collection::vec`] and
//!   [`Just`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via `Debug` instead of a minimized counterexample), and no
//! persistence of regression seeds (`*.proptest-regressions` files are
//! ignored). Case generation is fully deterministic: the RNG is seeded
//! from the test's name, so failures reproduce across runs and machines.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Just, Strategy};

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!`; try another.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (the `cases` knob is the only one honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property: sample inputs until `config.cases` accepted cases
/// pass, panic on the first failure. Used by the [`proptest!`] expansion;
/// not part of the public upstream API.
pub fn run_property(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    let mut rng = StdRng::seed_from_u64(fnv1a(name));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property '{name}': too many prop_assume! rejections \
                     ({rejected}) before {accepted} cases passed"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {accepted}: {msg}");
            }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Assert a condition inside a property; on failure the case's inputs are
/// reported through the panic message of the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `match` instead of `if !cond`: the condition is caller syntax, and
        // negating a partial-ord comparison would trip clippy at every
        // expansion site.
        match $cond {
            true => {}
            false => {
                return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                    $($fmt)*
                )));
            }
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => {
                return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!(
                    $cond
                )));
            }
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(&config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 0.25f64..0.75, n in 1u8..=7) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..=7).contains(&n));
        }

        #[test]
        fn assume_filters(x in 0.0f64..1.0) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }

        #[test]
        fn tuples_and_map(pair in (0.0f64..1.0, 1.0f64..2.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((1.0..3.0).contains(&pair));
        }

        #[test]
        fn vectors(v in crate::collection::vec(any::<u8>(), 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::run_property(&ProptestConfig::with_cases(8), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
