//! Lazily evaluated BER response surfaces.
//!
//! The figure generators, the link validation and the MAC epoch simulator
//! all keep asking the same question — "what is the BER of mode *m* at
//! bitrate *r* and SNR *γ*?" — thousands of times, often at exactly the
//! same γ. A [`BerSurface`] wraps one underlying evaluator (a closed form
//! or a Monte-Carlo run) and answers from a memo table, solving each point
//! at most once per process.
//!
//! Two operating modes, selected by [`SurfaceConfig::rel_tol`]:
//!
//! * **Strict** (`rel_tol == 0.0`, the default used by the figure paths):
//!   every distinct γ is exact-solved once and memoized by its bit
//!   pattern. Returned values are *identical* to calling the evaluator
//!   directly, so figure output stays byte-for-byte unchanged — the
//!   surface only removes repeated work.
//! * **Interpolating** (`rel_tol > 0.0`): γ is bracketed on a log-spaced
//!   grid (`exp(k·ln_gamma_step)`). The node, half-node and next node are
//!   exact-solved (memoized), and the query is answered by piecewise
//!   log-log-linear interpolation through the three points — monotone
//!   between solved nodes by construction. The interpolation error is
//!   bounded before use: the defect of the coarse secant at the half node
//!   measures the local curvature, and for a smooth BER curve the refined
//!   (half-step) interpolant's error is about a quarter of that defect.
//!   If the defect exceeds `rel_tol` (in log space ≈ relative error), the
//!   surface falls back to an exact solve of the query point itself, so
//!   an answer is never worse than `rel_tol` relative error.
//!
//! Either way, a surface's answer is a pure function of
//! (γ, config, evaluator): node placement depends only on γ, never on
//! query order or thread interleaving, so results are deterministic at any
//! thread count. [`shared`] hands out process-wide strict surfaces keyed
//! by ([`BerModel`], bitrate), which is what
//! `braidio-radio::Characterization` and the MAC simulator query.

use braidio_units::BitsPerSecond;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Configuration of a [`BerSurface`].
#[derive(Debug, Clone, Copy)]
pub struct SurfaceConfig {
    /// Grid pitch in ln(γ). 1 dB is `ln(10)/10 ≈ 0.2303`.
    pub ln_gamma_step: f64,
    /// Accepted relative interpolation error. `0.0` disables interpolation
    /// entirely: every distinct γ is exact-solved (and memoized).
    pub rel_tol: f64,
    /// Memo-table size cap; the table is cleared when it would exceed this
    /// (same policy as the MAC planner's solve memo).
    pub max_memo: usize,
}

impl SurfaceConfig {
    /// Strict mode: exact solves only, memoized. This is what the figure
    /// paths use — byte-identical output to direct evaluation.
    pub fn strict() -> Self {
        SurfaceConfig {
            ln_gamma_step: core::f64::consts::LN_10 / 10.0,
            rel_tol: 0.0,
            max_memo: 4096,
        }
    }

    /// Interpolating mode with a 1 dB grid and the given relative error
    /// tolerance.
    pub fn interpolating(rel_tol: f64) -> Self {
        assert!(rel_tol > 0.0, "use strict() for exact evaluation");
        SurfaceConfig {
            rel_tol,
            ..SurfaceConfig::strict()
        }
    }
}

/// A memoizing, optionally interpolating BER-vs-SNR response surface.
///
/// See the module docs for the evaluation rules and determinism argument.
pub struct BerSurface {
    eval: Box<dyn Fn(f64) -> f64 + Send + Sync>,
    config: SurfaceConfig,
    memo: Mutex<HashMap<u64, f64>>,
}

impl core::fmt::Debug for BerSurface {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BerSurface")
            .field("config", &self.config)
            .field("memoized", &self.memo.lock().unwrap().len())
            .finish()
    }
}

impl BerSurface {
    /// A surface over `eval` with the given configuration.
    pub fn new(eval: Box<dyn Fn(f64) -> f64 + Send + Sync>, config: SurfaceConfig) -> Self {
        assert!(config.ln_gamma_step > 0.0);
        assert!(config.rel_tol >= 0.0);
        BerSurface {
            eval,
            config,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The configured evaluation rules.
    pub fn config(&self) -> SurfaceConfig {
        self.config
    }

    /// Number of exact solves currently memoized.
    pub fn memoized(&self) -> usize {
        self.memo.lock().unwrap().len()
    }

    /// Exact-solve `gamma`, memoized by its bit pattern.
    fn exact(&self, gamma: f64) -> f64 {
        let key = gamma.to_bits();
        if let Some(&v) = self.memo.lock().unwrap().get(&key) {
            return v;
        }
        // Solve outside the lock: evaluators can be expensive (Monte-Carlo)
        // and are pure, so a racing duplicate solve returns the same value.
        let v = (self.eval)(gamma);
        let mut memo = self.memo.lock().unwrap();
        if memo.len() >= self.config.max_memo {
            memo.clear();
        }
        memo.insert(key, v);
        v
    }

    /// The BER at linear SNR `gamma`.
    pub fn ber(&self, gamma: f64) -> f64 {
        assert!(gamma.is_finite() && gamma > 0.0, "need finite positive SNR");
        if self.config.rel_tol <= 0.0 {
            return self.exact(gamma);
        }
        let step = self.config.ln_gamma_step;
        let t = gamma.ln() / step;
        let k = t.floor();
        let g0 = (k * step).exp();
        let gm = ((k + 0.5) * step).exp();
        let g1 = ((k + 1.0) * step).exp();
        // A query landing exactly on a solved node returns the exact value,
        // so grid-node answers are byte-identical to direct evaluation.
        if gamma == g0 || gamma == gm || gamma == g1 {
            return self.exact(gamma);
        }
        let (b0, bm, b1) = (self.exact(g0), self.exact(gm), self.exact(g1));
        // Log-log interpolation needs strictly positive values; degenerate
        // brackets (underflowed tails) fall back to the exact solve.
        if !(b0 > 0.0 && bm > 0.0 && b1 > 0.0) {
            return self.exact(gamma);
        }
        let (l0, lm, l1) = (b0.ln(), bm.ln(), b1.ln());
        // Error bound: the coarse secant's defect at the half node.
        if (0.5 * (l0 + l1) - lm).abs() > self.config.rel_tol {
            return self.exact(gamma);
        }
        let frac = t - k;
        let l = if frac <= 0.5 {
            l0 + (lm - l0) * (frac / 0.5)
        } else {
            lm + (l1 - lm) * ((frac - 0.5) / 0.5)
        };
        l.exp()
    }

    /// The BER at an SNR given in dB (convenience wrapper).
    pub fn ber_db(&self, snr_db: f64) -> f64 {
        self.ber(10f64.powf(snr_db / 10.0))
    }

    /// Resolve a whole slice of SNR points in one call:
    /// `out[i] = self.ber(gammas[i])`, bit-for-bit.
    ///
    /// In strict mode the batch takes the memo lock **twice total** instead
    /// of once per point: one pass answers the hits and collects the
    /// misses, the misses are solved outside the lock (evaluators are
    /// pure, so a racing duplicate solve returns the same value — large
    /// miss sets fan the solves out over the `braidio-pool` workers and
    /// merge in miss order), and a
    /// second pass inserts them under the same cap-clear policy as
    /// `exact` — so the memo table evolves exactly as if
    /// the points had been queried one at a time, and on a warm table the
    /// whole batch is a single lock acquisition over a cache-friendly
    /// traversal. Interpolating mode delegates to element-wise [`ber`]
    /// (each query probes up to three grid nodes, so there is no single
    /// lock pass to batch); the bitwise equivalence holds there trivially.
    ///
    /// [`ber`]: Self::ber
    pub fn ber_batch(&self, gammas: &[f64], out: &mut [f64]) {
        assert_eq!(gammas.len(), out.len(), "gamma/out slice length mismatch");
        if self.config.rel_tol > 0.0 {
            for (o, &g) in out.iter_mut().zip(gammas) {
                *o = self.ber(g);
            }
            return;
        }
        for &g in gammas {
            assert!(g.is_finite() && g > 0.0, "need finite positive SNR");
        }
        let mut misses: Vec<usize> = Vec::new();
        {
            let memo = self.memo.lock().unwrap();
            for (i, &g) in gammas.iter().enumerate() {
                match memo.get(&g.to_bits()) {
                    Some(&v) => out[i] = v,
                    None => misses.push(i),
                }
            }
        }
        if misses.is_empty() {
            return;
        }
        // Misses solve outside the lock; the evaluator is pure, so the
        // solves are independent and can fan out over the work pool, merged
        // back in miss order — values and memo evolution are identical at
        // any thread count. Tiny miss sets stay on the calling thread,
        // where spawning workers would dwarf the solves.
        const PAR_MISS_MIN: usize = 32;
        if misses.len() >= PAR_MISS_MIN {
            let vals = braidio_pool::par_map(&misses, |&i| (self.eval)(gammas[i]));
            for (&i, v) in misses.iter().zip(vals) {
                out[i] = v;
            }
        } else {
            for &i in &misses {
                out[i] = (self.eval)(gammas[i]);
            }
        }
        let mut memo = self.memo.lock().unwrap();
        for &i in &misses {
            if memo.len() >= self.config.max_memo {
                memo.clear();
            }
            memo.insert(gammas[i].to_bits(), out[i]);
        }
    }
}

/// The closed-form BER models a shared surface can wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BerModel {
    /// Noncoherent OOK envelope detection (passive / backscatter links):
    /// [`crate::ber::ber_ook_noncoherent_fast`].
    NoncoherentOok,
    /// Coherent FSK detection (the active BLE-class radio):
    /// [`crate::ber::ber_coherent`].
    CoherentFsk,
}

type Registry = RwLock<HashMap<(BerModel, u64), Arc<BerSurface>>>;

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn make_shared_surface(model: BerModel) -> Arc<BerSurface> {
    let eval: Box<dyn Fn(f64) -> f64 + Send + Sync> = match model {
        BerModel::NoncoherentOok => Box::new(crate::ber::ber_ook_noncoherent_fast),
        BerModel::CoherentFsk => Box::new(crate::ber::ber_coherent),
    };
    Arc::new(BerSurface::new(eval, SurfaceConfig::strict()))
}

/// The process-wide shared strict surface for (`model`, `rate`).
///
/// All callers asking about the same mode and bitrate share one memo
/// table, so e.g. the MAC epoch loop and the range figures each solve a
/// given SNR point once per process. Strict mode keeps every answer
/// identical to calling the underlying closed form directly. The rate is
/// part of the key (the closed forms are rate-independent given γ, but
/// surfaces backed by rate-dependent evaluators share the registry).
///
/// Concurrency: the fast path is a read lock; a cold miss upgrades to the
/// write lock and re-checks through `entry` (double-checked upsert), so
/// racing callers that lose the upgrade race find the winner's surface
/// instead of clobbering it — every caller gets the *same* `Arc` for a
/// given key, and an in-flight batch on one thread keeps its memo table.
pub fn shared(model: BerModel, rate: BitsPerSecond) -> Arc<BerSurface> {
    let registry = REGISTRY.get_or_init(|| RwLock::new(HashMap::new()));
    let key = (model, rate.bps().to_bits());
    if let Some(s) = registry.read().unwrap().get(&key) {
        return Arc::clone(s);
    }
    // Another thread may have inserted the key between the read unlock and
    // the write lock: `entry` re-checks under the write lock and only
    // builds the surface when the slot is genuinely empty.
    let mut writer = registry.write().unwrap();
    Arc::clone(
        writer
            .entry(key)
            .or_insert_with(|| make_shared_surface(model)),
    )
}

/// Resolve several shared surfaces in one registry pass: a single read
/// lock answers every warm key, and only when some key is cold does a
/// single write lock fill the gaps (same double-checked `entry` upsert as
/// [`shared`]). `out[i]` is exactly `shared(model, rates[i])` — the fleet
/// engine's planning-wave sweep uses this so a whole wave's BER batches
/// touch the registry lock once instead of once per (mode, rate) query.
pub fn shared_batch(model: BerModel, rates: &[BitsPerSecond]) -> Vec<Arc<BerSurface>> {
    let registry = REGISTRY.get_or_init(|| RwLock::new(HashMap::new()));
    let mut out: Vec<Option<Arc<BerSurface>>> = vec![None; rates.len()];
    {
        let reader = registry.read().unwrap();
        for (o, rate) in out.iter_mut().zip(rates) {
            if let Some(s) = reader.get(&(model, rate.bps().to_bits())) {
                *o = Some(Arc::clone(s));
            }
        }
    }
    if out.iter().any(Option::is_none) {
        let mut writer = registry.write().unwrap();
        for (o, rate) in out.iter_mut().zip(rates) {
            if o.is_none() {
                let key = (model, rate.bps().to_bits());
                *o = Some(Arc::clone(
                    writer
                        .entry(key)
                        .or_insert_with(|| make_shared_surface(model)),
                ));
            }
        }
    }
    out.into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::{ber_coherent, ber_ook_noncoherent_fast};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counted_ook(counter: Arc<AtomicUsize>) -> Box<dyn Fn(f64) -> f64 + Send + Sync> {
        Box::new(move |g| {
            counter.fetch_add(1, Ordering::Relaxed);
            ber_ook_noncoherent_fast(g)
        })
    }

    #[test]
    fn strict_mode_is_bitwise_exact_and_solves_once() {
        let calls = Arc::new(AtomicUsize::new(0));
        let s = BerSurface::new(counted_ook(Arc::clone(&calls)), SurfaceConfig::strict());
        for _ in 0..3 {
            for db in [2.0f64, 4.0, 6.0, 8.0, 10.0] {
                let gamma = 10f64.powf(db / 10.0);
                let direct = ber_ook_noncoherent_fast(gamma);
                assert_eq!(s.ber(gamma).to_bits(), direct.to_bits(), "{db} dB");
            }
        }
        // 5 distinct points, 15 queries, 5 solves.
        assert_eq!(calls.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn interpolating_mode_respects_tolerance() {
        let cfg = SurfaceConfig::interpolating(0.02);
        let s = BerSurface::new(Box::new(ber_ook_noncoherent_fast), cfg);
        for i in 0..200 {
            let gamma = 10f64.powf(0.3 + 0.05 * i as f64 / 10.0);
            let approx = s.ber(gamma);
            let exact = ber_ook_noncoherent_fast(gamma);
            let rel = (approx.ln() - exact.ln()).abs();
            // Accepted interpolants carry ~defect/4 error; the guard bounds
            // the defect by rel_tol, so allow rel_tol itself with margin.
            assert!(
                rel <= cfg.rel_tol * 1.5,
                "gamma {gamma}: approx {approx:.6e} vs exact {exact:.6e} (rel {rel:.3e})"
            );
        }
    }

    #[test]
    fn interpolating_mode_is_exact_at_grid_nodes() {
        let cfg = SurfaceConfig::interpolating(0.05);
        let s = BerSurface::new(Box::new(ber_ook_noncoherent_fast), cfg);
        for k in -4i32..=40 {
            let gamma = (k as f64 * cfg.ln_gamma_step).exp();
            let direct = ber_ook_noncoherent_fast(gamma);
            assert_eq!(s.ber(gamma).to_bits(), direct.to_bits(), "node {k}");
        }
    }

    #[test]
    fn answers_do_not_depend_on_query_order() {
        let cfg = SurfaceConfig::interpolating(0.02);
        let gammas: Vec<f64> = (0..60).map(|i| 10f64.powf(0.2 + 0.02 * i as f64)).collect();
        let forward = BerSurface::new(Box::new(ber_ook_noncoherent_fast), cfg);
        let backward = BerSurface::new(Box::new(ber_ook_noncoherent_fast), cfg);
        let a: Vec<u64> = gammas.iter().map(|&g| forward.ber(g).to_bits()).collect();
        let b: Vec<u64> = {
            let mut out: Vec<(usize, u64)> = gammas
                .iter()
                .enumerate()
                .rev()
                .map(|(i, &g)| (i, backward.ber(g).to_bits()))
                .collect();
            out.sort_by_key(|&(i, _)| i);
            out.into_iter().map(|(_, v)| v).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn surface_stays_monotone_where_model_is() {
        let cfg = SurfaceConfig::interpolating(0.05);
        let s = BerSurface::new(Box::new(ber_ook_noncoherent_fast), cfg);
        let mut prev = f64::INFINITY;
        for i in 0..400 {
            let gamma = 10f64.powf(0.0 + i as f64 * 0.005);
            let b = s.ber(gamma);
            assert!(
                b <= prev * (1.0 + 1e-12),
                "BER must not rise with SNR: {b} after {prev} at gamma {gamma}"
            );
            prev = b;
        }
    }

    #[test]
    fn memo_cap_clears_instead_of_growing() {
        let cfg = SurfaceConfig {
            max_memo: 16,
            ..SurfaceConfig::strict()
        };
        let s = BerSurface::new(Box::new(ber_ook_noncoherent_fast), cfg);
        for i in 0..200 {
            let _ = s.ber(1.0 + i as f64 * 0.01);
        }
        assert!(s.memoized() <= 16);
    }

    #[test]
    fn ber_batch_matches_elementwise_bitwise_in_both_modes() {
        let gammas: Vec<f64> = (0..96).map(|i| 10f64.powf(0.1 + 0.03 * i as f64)).collect();
        for cfg in [SurfaceConfig::strict(), SurfaceConfig::interpolating(0.02)] {
            // A fresh surface answered in batch, against a fresh surface
            // answered point-by-point: cold paths must agree bitwise...
            let batch = BerSurface::new(Box::new(ber_ook_noncoherent_fast), cfg);
            let scalar = BerSurface::new(Box::new(ber_ook_noncoherent_fast), cfg);
            let mut out = vec![0.0; gammas.len()];
            batch.ber_batch(&gammas, &mut out);
            for (i, (&o, &g)) in out.iter().zip(&gammas).enumerate() {
                assert_eq!(o.to_bits(), scalar.ber(g).to_bits(), "cold point {i}");
            }
            // ...and a warm re-batch must reproduce the memoized answers.
            let mut warm = vec![0.0; gammas.len()];
            batch.ber_batch(&gammas, &mut warm);
            for (i, (&w, &o)) in warm.iter().zip(&out).enumerate() {
                assert_eq!(w.to_bits(), o.to_bits(), "warm point {i}");
            }
        }
    }

    #[test]
    fn ber_batch_respects_the_memo_cap() {
        let cfg = SurfaceConfig {
            max_memo: 16,
            ..SurfaceConfig::strict()
        };
        let s = BerSurface::new(Box::new(ber_ook_noncoherent_fast), cfg);
        let gammas: Vec<f64> = (0..200).map(|i| 1.0 + i as f64 * 0.01).collect();
        let mut out = vec![0.0; gammas.len()];
        s.ber_batch(&gammas, &mut out);
        assert!(s.memoized() <= 16);
    }

    #[test]
    fn concurrent_shared_calls_return_the_same_arc() {
        // A key no other test touches, so every thread races the cold miss.
        let rate = BitsPerSecond::new(31_337.0);
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || shared(BerModel::NoncoherentOok, rate)))
            .collect();
        let surfaces: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for s in &surfaces[1..] {
            assert!(
                Arc::ptr_eq(&surfaces[0], s),
                "racing shared() calls built distinct surfaces"
            );
        }
    }

    #[test]
    fn shared_batch_matches_shared_per_key() {
        let rates = [
            BitsPerSecond::KBPS_10,
            BitsPerSecond::KBPS_100,
            BitsPerSecond::MBPS_1,
            BitsPerSecond::new(47_474.0), // cold key: exercises the write pass
        ];
        let batch = shared_batch(BerModel::NoncoherentOok, &rates);
        for (s, &rate) in batch.iter().zip(&rates) {
            assert!(Arc::ptr_eq(s, &shared(BerModel::NoncoherentOok, rate)));
        }
    }

    #[test]
    fn shared_registry_returns_the_same_surface() {
        let a = shared(BerModel::NoncoherentOok, BitsPerSecond::KBPS_100);
        let b = shared(BerModel::NoncoherentOok, BitsPerSecond::KBPS_100);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared(BerModel::CoherentFsk, BitsPerSecond::KBPS_100);
        assert!(!Arc::ptr_eq(&a, &c));
        // Strict shared surfaces answer exactly like the closed forms.
        let gamma = 10f64.powf(0.8);
        assert_eq!(
            a.ber(gamma).to_bits(),
            ber_ook_noncoherent_fast(gamma).to_bits()
        );
        assert_eq!(c.ber(gamma).to_bits(), ber_coherent(gamma).to_bits());
    }
}
