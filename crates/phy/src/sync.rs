//! Bit synchronization: recover bit decisions from the oversampled slicer
//! output.
//!
//! The comparator at the end of the passive chain produces an oversampled
//! boolean stream with no clock. A real Braidio MCU recovers timing from
//! the preamble's edges; we implement the same early/late edge-tracking
//! loop so the Monte-Carlo pipeline does not need a magic "sample at 3/4
//! of the bit" oracle.

/// An early/late digital bit synchronizer.
#[derive(Debug, Clone)]
pub struct BitSync {
    /// Nominal samples per bit.
    pub samples_per_bit: f64,
    /// Loop gain: fraction of a sample by which an off-center edge shifts
    /// the next decision point.
    pub gain: f64,
}

impl BitSync {
    /// A synchronizer for a given oversampling factor.
    pub fn new(samples_per_bit: usize) -> Self {
        assert!(samples_per_bit >= 4, "need at least 4x oversampling");
        BitSync {
            samples_per_bit: samples_per_bit as f64,
            gain: 0.25,
        }
    }

    /// Recover bits from an oversampled level stream. Decisions are taken
    /// mid-bit; every observed edge nudges the phase estimate toward
    /// putting edges at bit boundaries.
    pub fn recover(&self, samples: &[bool]) -> Vec<bool> {
        let spb = self.samples_per_bit;
        let mut bits = Vec::with_capacity(samples.len() / spb as usize);
        // Phase: position (in samples) of the next decision instant.
        let mut next_decision = spb * 0.5;
        let mut last_level = match samples.first() {
            Some(&l) => l,
            None => return bits,
        };
        let mut last_edge_at: Option<f64> = None;
        for (i, &s) in samples.iter().enumerate() {
            let t = i as f64;
            if s != last_level {
                last_edge_at = Some(t);
                last_level = s;
            }
            if t >= next_decision {
                bits.push(s);
                // If an edge occurred in the last bit, steer so edges land
                // at decision−spb/2 (the bit boundary).
                if let Some(edge) = last_edge_at.take() {
                    let ideal_boundary = next_decision - spb * 0.5;
                    let err = edge - ideal_boundary;
                    // Wrap error into [-spb/2, spb/2).
                    let err = (err + spb * 0.5).rem_euclid(spb) - spb * 0.5;
                    next_decision += self.gain * err;
                }
                next_decision += spb;
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oversample(bits: &[bool], spb: usize) -> Vec<bool> {
        bits.iter()
            .flat_map(|&b| std::iter::repeat_n(b, spb))
            .collect()
    }

    fn alternating(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn perfect_clock_recovers_exactly() {
        let bits: Vec<bool> = (0..200).map(|i| (i * 13) % 5 < 2).collect();
        let sync = BitSync::new(16);
        let recovered = sync.recover(&oversample(&bits, 16));
        assert_eq!(recovered.len(), bits.len());
        assert_eq!(recovered, bits);
    }

    #[test]
    fn tolerates_clock_offset() {
        // Receiver believes 16 samples/bit; transmitter actually runs at
        // 16.3 (≈2% ppm-scale offset after scaling) — the loop must track.
        let mut bits = alternating(16); // training preamble
        bits.extend((0..300).map(|i| (i * 7) % 3 == 0));
        let mut samples = Vec::new();
        let mut acc = 0.0f64;
        for &b in &bits {
            acc += 16.3;
            while samples.len() < acc as usize {
                samples.push(b);
            }
        }
        let sync = BitSync::new(16);
        let recovered = sync.recover(&samples);
        // Compare the tail (after training) allowing the lengths to differ
        // by a couple of bits at the end.
        let n = bits.len().min(recovered.len());
        let errors = bits[16..n]
            .iter()
            .zip(&recovered[16..n])
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            errors <= 2,
            "clock-offset tracking failed: {errors} errors over {}",
            n - 16
        );
    }

    #[test]
    fn tolerates_initial_phase_error() {
        // Stream starts mid-bit: prepend half a bit of the opposite level.
        let bits: Vec<bool> = alternating(100);
        let mut samples = oversample(&[false], 8); // misleading half-lead-in
        samples.extend(oversample(&bits, 16));
        let sync = BitSync::new(16);
        let recovered = sync.recover(&samples);
        // Find the alternating pattern somewhere in the output.
        let target = &bits[..50];
        let found = recovered.windows(target.len()).any(|w| w == target);
        assert!(found, "alternating payload not recovered");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(BitSync::new(8).recover(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "4x oversampling")]
    fn undersampling_rejected() {
        let _ = BitSync::new(2);
    }
}
