//! Inline additive Gaussian envelope noise.
//!
//! The Monte-Carlo demodulator used to materialize the whole envelope
//! waveform and then corrupt it in a second pass. This source produces the
//! same corrupted samples one at a time, so the fused pipeline in
//! [`crate::montecarlo`] never holds a waveform vector at all.
//!
//! ## RNG draw-order contract
//!
//! [`corrupt`] consumes **exactly two** uniform draws per sample, in the
//! order `u1 ∈ [MIN_POSITIVE, 1)` then `u2 ∈ [0, 1)`, and combines them
//! with the cosine branch of the Box-Muller transform. This is precisely
//! the sequence the original batch noise loop performed per envelope
//! sample, so a run seeded the same way produces bit-identical corrupted
//! samples whether the waveform is materialized or streamed.
//!
//! [`corrupt`]: GaussianEnvelopeNoise::corrupt

use rand::rngs::StdRng;
use rand::Rng;

/// A streaming additive-Gaussian corruption source for envelope samples.
///
/// Owns its RNG (handed over after any bit-stream draws, preserving the
/// overall draw order of a chunk) and clamps outputs physical
/// (envelope ≥ 0).
#[derive(Debug, Clone)]
pub struct GaussianEnvelopeNoise {
    rng: StdRng,
    rms: f64,
}

impl GaussianEnvelopeNoise {
    /// A noise source drawing from `rng` with the given RMS amplitude.
    pub fn new(rng: StdRng, rms: f64) -> Self {
        GaussianEnvelopeNoise { rng, rms }
    }

    /// Corrupt one clean envelope `level`: add one Gaussian variate scaled
    /// by the RMS, clamped to the physical (non-negative) range.
    #[inline]
    pub fn corrupt(&mut self, level: f64) -> f64 {
        let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        (level + self.rms * z).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matches_the_batch_noise_loop() {
        // The exact per-sample sequence the seed's batch loop performed.
        let rms = 0.01;
        let levels = [0.05, 0.0, 0.05, 0.05, 0.0, 0.0, 0.05];
        let mut rng = StdRng::seed_from_u64(42);
        let batch: Vec<f64> = levels
            .iter()
            .map(|&s| {
                let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
                (s + rms * z).max(0.0)
            })
            .collect();
        let mut noise = GaussianEnvelopeNoise::new(StdRng::seed_from_u64(42), rms);
        for (i, &level) in levels.iter().enumerate() {
            let streamed = noise.corrupt(level);
            assert_eq!(streamed.to_bits(), batch[i].to_bits(), "sample {i}");
        }
    }

    #[test]
    fn outputs_stay_physical() {
        let mut noise = GaussianEnvelopeNoise::new(StdRng::seed_from_u64(7), 10.0);
        for _ in 0..10_000 {
            assert!(noise.corrupt(0.0) >= 0.0);
        }
    }

    #[test]
    fn zero_rms_is_transparent_up_to_clamp() {
        let mut noise = GaussianEnvelopeNoise::new(StdRng::seed_from_u64(1), 0.0);
        for &level in &[0.0, 0.01, 0.05, 1.0] {
            assert_eq!(noise.corrupt(level), level);
        }
    }
}
