//! Baseband modulation.
//!
//! The passive-receiver and backscatter links use ASK/OOK: the tag toggles
//! its RF transistor (backscatter TX) or the carrier emitter keys its output
//! (passive-RX downlink), and the envelope detector sees a two-level
//! envelope. The active radio uses (G)FSK, but since its receiver is a
//! conventional coherent chip we only need its analytic BER, not waveforms.

use braidio_units::{BitsPerSecond, Seconds};

/// OOK/ASK envelope waveform generator.
#[derive(Debug, Clone, Copy)]
pub struct OokModulator {
    /// Samples generated per bit.
    pub samples_per_bit: usize,
    /// Envelope level for a `1` bit (antenna-referred volts).
    pub high: f64,
    /// Envelope level for a `0` bit. A finite extinction ratio models the
    /// tag's imperfect "absorb" state.
    pub low: f64,
}

impl OokModulator {
    /// A modulator with the given levels and resolution.
    pub fn new(samples_per_bit: usize, high: f64, low: f64) -> Self {
        assert!(samples_per_bit >= 2, "need at least 2 samples per bit");
        assert!(
            high > low && low >= 0.0,
            "levels must satisfy high > low >= 0"
        );
        OokModulator {
            samples_per_bit,
            high,
            low,
        }
    }

    /// Full-depth OOK with unit amplitude and 20 samples per bit.
    pub fn unit() -> Self {
        OokModulator::new(20, 1.0, 0.0)
    }

    /// Scale both levels (e.g. by a channel amplitude).
    pub fn scaled(&self, k: f64) -> Self {
        OokModulator {
            samples_per_bit: self.samples_per_bit,
            high: self.high * k,
            low: self.low * k,
        }
    }

    /// The envelope level of one bit.
    #[inline]
    pub fn level(&self, bit: bool) -> f64 {
        if bit {
            self.high
        } else {
            self.low
        }
    }

    /// The envelope waveform for a bit sequence as a lazy per-sample
    /// iterator — the streaming form of [`OokModulator::modulate`], used by
    /// the fused Monte-Carlo pipeline so no waveform vector is ever held.
    pub fn samples<'a>(&self, bits: &'a [bool]) -> impl Iterator<Item = f64> + 'a {
        let m = *self;
        bits.iter()
            .flat_map(move |&b| std::iter::repeat_n(m.level(b), m.samples_per_bit))
    }

    /// Generate the envelope waveform for a bit sequence.
    ///
    /// Batch wrapper over [`OokModulator::samples`]; allocates the one
    /// output vector.
    pub fn modulate(&self, bits: &[bool]) -> Vec<f64> {
        let mut out = Vec::with_capacity(bits.len() * self.samples_per_bit);
        out.extend(self.samples(bits));
        out
    }

    /// The sample interval for a given bitrate.
    pub fn sample_interval(&self, rate: BitsPerSecond) -> Seconds {
        rate.bit_time() / self.samples_per_bit as f64
    }

    /// The mid-bit sample index for bit `i` (where a demodulator should
    /// sample the settled envelope).
    pub fn decision_index(&self, i: usize) -> usize {
        i * self.samples_per_bit + (3 * self.samples_per_bit) / 4
    }

    /// Modulation depth `(high - low) / high`.
    pub fn depth(&self) -> f64 {
        (self.high - self.low) / self.high
    }
}

/// The active radio's FSK parameters (BLE-class GFSK): carried for
/// documentation and for the analytic BER path; no waveform synthesis is
/// required because the active receiver is a conventional coherent chip.
#[derive(Debug, Clone, Copy)]
pub struct FskParams {
    /// Frequency deviation, hertz.
    pub deviation_hz: f64,
    /// Symbol rate (= bitrate for 2-FSK).
    pub rate: BitsPerSecond,
}

impl FskParams {
    /// BLE-class 1 Mbps GFSK (±250 kHz deviation).
    pub fn ble_1m() -> Self {
        FskParams {
            deviation_hz: 250e3,
            rate: BitsPerSecond::MBPS_1,
        }
    }

    /// Modulation index `2·Δf / rate`.
    pub fn modulation_index(&self) -> f64 {
        2.0 * self.deviation_hz / self.rate.bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_shape() {
        let m = OokModulator::new(4, 1.0, 0.1);
        let w = m.modulate(&[true, false]);
        assert_eq!(w, vec![1.0, 1.0, 1.0, 1.0, 0.1, 0.1, 0.1, 0.1]);
    }

    #[test]
    fn samples_iterator_matches_modulate() {
        let m = OokModulator::new(7, 0.05, 0.003);
        let bits = [true, false, false, true, true, false, true];
        let streamed: Vec<f64> = m.samples(&bits).collect();
        assert_eq!(streamed, m.modulate(&bits));
        assert_eq!(streamed.len(), bits.len() * m.samples_per_bit);
    }

    #[test]
    fn scaling_preserves_depth() {
        let m = OokModulator::new(4, 1.0, 0.2);
        let s = m.scaled(0.01);
        assert!((m.depth() - s.depth()).abs() < 1e-12);
        assert!((s.high - 0.01).abs() < 1e-15);
    }

    #[test]
    fn sample_interval_matches_rate() {
        let m = OokModulator::unit();
        let dt = m.sample_interval(BitsPerSecond::KBPS_100);
        assert!((dt.micros() - 0.5).abs() < 1e-12); // 10 µs / 20
    }

    #[test]
    fn decision_index_lands_late_in_bit() {
        let m = OokModulator::new(20, 1.0, 0.0);
        assert_eq!(m.decision_index(0), 15);
        assert_eq!(m.decision_index(3), 75);
    }

    #[test]
    fn ble_fsk_index() {
        let f = FskParams::ble_1m();
        assert!((f.modulation_index() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "high > low")]
    fn inverted_levels_rejected() {
        let _ = OokModulator::new(4, 0.1, 0.5);
    }
}
