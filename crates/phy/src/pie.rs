//! Pulse-interval encoding (PIE) — the power-friendly downlink coding.
//!
//! When the *transmitter* owns the carrier and the receiver is a passive
//! envelope detector (Braidio's passive mode), the carrier is also what
//! keeps the detector's charge pump topped up. Plain OOK starves the pump
//! during long `0` runs; EPC Gen2 readers therefore use PIE: every symbol
//! is mostly carrier-ON, and the data lives in the *interval* between
//! short OFF pulses. We implement the Gen2-flavoured variant:
//!
//! ```text
//! data-0:  [ON × tari][OFF × pw]              (short symbol)
//! data-1:  [ON × 2·tari][OFF × pw]            (long symbol)
//! ```
//!
//! with `pw` a fraction of `tari`. Decoding measures ON-run lengths
//! between OFF pulses — self-clocking, so no separate synchronizer is
//! needed on this path.

/// PIE parameters, in detector samples.
#[derive(Debug, Clone, Copy)]
pub struct Pie {
    /// Samples of carrier-ON for a `0` symbol (the reference interval,
    /// "tari" in Gen2).
    pub tari: usize,
    /// Samples of carrier-OFF after each symbol (the pulse).
    pub pw: usize,
}

impl Pie {
    /// Gen2-flavoured defaults: 8-sample tari, 2-sample pulse.
    pub fn gen2() -> Self {
        Pie { tari: 8, pw: 2 }
    }

    /// Create with explicit parameters.
    pub fn new(tari: usize, pw: usize) -> Self {
        assert!(tari >= 2, "tari must be at least 2 samples");
        assert!(pw >= 1 && pw < tari, "pulse must be shorter than tari");
        Pie { tari, pw }
    }

    /// Encode bits to ON/OFF samples, with a leading delimiter pulse so
    /// the decoder can find the first symbol.
    pub fn encode(&self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(bits.len() * (2 * self.tari + self.pw) + self.pw);
        // Delimiter: a bare OFF pulse.
        out.extend(std::iter::repeat_n(false, self.pw));
        for &b in bits {
            let on = if b { 2 * self.tari } else { self.tari };
            out.extend(std::iter::repeat_n(true, on));
            out.extend(std::iter::repeat_n(false, self.pw));
        }
        out
    }

    /// Decode ON/OFF samples back to bits by measuring ON-run lengths
    /// between OFF pulses. Tolerates ±33 % run-length jitter.
    pub fn decode(&self, samples: &[bool]) -> Vec<bool> {
        let threshold = (3 * self.tari) / 2; // between tari and 2·tari
        let mut bits = Vec::new();
        let mut run = 0usize;
        let mut seen_delimiter = false;
        for &s in samples {
            if s {
                run += 1;
            } else {
                if seen_delimiter && run >= self.tari / 2 {
                    bits.push(run > threshold);
                }
                if run > 0 || !seen_delimiter {
                    seen_delimiter = true;
                }
                run = 0;
            }
        }
        bits
    }

    /// Fraction of the airtime the carrier is ON for a given bit mix —
    /// the power delivered to the tag's harvester relative to CW.
    pub fn carrier_duty(&self, ones_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&ones_fraction));
        let mean_on = self.tari as f64 * (1.0 + ones_fraction);
        mean_on / (mean_on + self.pw as f64)
    }

    /// Mean data rate in bits per sample for a given bit mix (PIE symbols
    /// have data-dependent length).
    pub fn bits_per_sample(&self, ones_fraction: f64) -> f64 {
        let mean_len = self.tari as f64 * (1.0 + ones_fraction) + self.pw as f64;
        1.0 / mean_len
    }
}

impl Default for Pie {
    fn default() -> Self {
        Pie::gen2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<Vec<bool>> {
        vec![
            vec![],
            vec![true],
            vec![false],
            vec![true; 40],
            vec![false; 40],
            (0..64).map(|i| i % 2 == 0).collect(),
            (0..64).map(|i| (i * 7) % 5 < 2).collect(),
        ]
    }

    #[test]
    fn round_trips() {
        let pie = Pie::gen2();
        for bits in patterns() {
            let samples = pie.encode(&bits);
            assert_eq!(pie.decode(&samples), bits, "{bits:?}");
        }
    }

    #[test]
    fn carrier_duty_is_high_even_for_all_zeros() {
        // The whole point: even worst-case data keeps the carrier on ~80 %
        // of the time, versus 0 % for OOK's all-zero run.
        let pie = Pie::gen2();
        assert!(pie.carrier_duty(0.0) >= 0.8, "{}", pie.carrier_duty(0.0));
        assert!(pie.carrier_duty(1.0) > pie.carrier_duty(0.0));
        assert!(pie.carrier_duty(1.0) < 1.0);
    }

    #[test]
    fn ones_cost_airtime() {
        let pie = Pie::gen2();
        assert!(pie.bits_per_sample(0.0) > pie.bits_per_sample(1.0));
    }

    #[test]
    fn tolerates_run_length_jitter() {
        // Stretch every ON run by one sample (clock skew): still decodes.
        let pie = Pie::gen2();
        let bits: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let samples = pie.encode(&bits);
        let mut jittered = Vec::new();
        let mut prev = false;
        for &s in &samples {
            if s && !prev {
                jittered.push(s); // duplicate the first sample of each run
            }
            jittered.push(s);
            prev = s;
        }
        assert_eq!(pie.decode(&jittered), bits);
    }

    #[test]
    fn decoder_ignores_leading_carrier() {
        // A receiver keying on mid-stream: CW before the delimiter must
        // not produce a phantom bit.
        let pie = Pie::gen2();
        let bits = vec![true, false, true];
        let mut samples = vec![true; 50];
        samples.extend(pie.encode(&bits));
        assert_eq!(pie.decode(&samples), bits);
    }

    #[test]
    #[should_panic(expected = "pulse must be shorter")]
    fn degenerate_pulse_rejected() {
        let _ = Pie::new(4, 4);
    }
}
