//! Bit-level framing: preamble, sync word, length, payload, FCS.
//!
//! Layout on the air (most significant bit first):
//!
//! ```text
//! +-----------+----------+--------+------------+---------+
//! | preamble  | sync(16) | len(8) | payload    | crc(16) |
//! | 0xAA * n  |  0xF0B7  |        | len bytes  |  CCITT  |
//! +-----------+----------+--------+------------+---------+
//! ```
//!
//! The alternating preamble gives the envelope detector's high-pass filter
//! and the comparator time to settle (there is no AGC in a passive chain —
//! the preamble *is* the settling mechanism), and the decoder tolerates a
//! configurable number of bit errors in the sync correlation.

use crate::crc::{append_crc, crc16_ccitt};

/// The 16-bit sync word (chosen for balanced, edge-rich structure).
pub const SYNC_WORD: u16 = 0xF0B7;

/// Default number of 0xAA preamble octets.
pub const DEFAULT_PREAMBLE_OCTETS: usize = 4;

/// Maximum payload length (single length octet).
pub const MAX_PAYLOAD: usize = 255;

/// A link-layer frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Payload bytes (up to [`MAX_PAYLOAD`]).
    pub payload: Vec<u8>,
}

/// Why decoding failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// No sync word found within the allowed error budget.
    NoSync,
    /// Bitstream ended before the advertised payload finished.
    Truncated,
    /// CRC mismatch — the payload is corrupt.
    BadCrc,
}

impl Frame {
    /// A frame carrying `payload`.
    pub fn new(payload: impl Into<Vec<u8>>) -> Self {
        let payload = payload.into();
        assert!(payload.len() <= MAX_PAYLOAD, "payload too long");
        Frame { payload }
    }

    /// On-air length in bits, including preamble and FCS.
    pub fn air_bits(&self) -> usize {
        (DEFAULT_PREAMBLE_OCTETS + 2 + 1 + self.payload.len() + 2) * 8
    }

    /// Serialize to the on-air bit sequence (MSB first).
    pub fn encode(&self) -> Vec<bool> {
        let mut bytes = Vec::with_capacity(DEFAULT_PREAMBLE_OCTETS + 5 + self.payload.len());
        bytes.extend(std::iter::repeat_n(0xAAu8, DEFAULT_PREAMBLE_OCTETS));
        bytes.extend_from_slice(&SYNC_WORD.to_be_bytes());
        let mut body = vec![self.payload.len() as u8];
        body.extend_from_slice(&self.payload);
        bytes.extend_from_slice(&append_crc(&body));
        bytes_to_bits(&bytes)
    }

    /// Decode from a received bit sequence, tolerating up to
    /// `sync_tolerance` bit errors in the sync correlation. The CRC covers
    /// length + payload, so any surviving payload error is rejected.
    pub fn decode(bits: &[bool], sync_tolerance: u32) -> Result<Frame, DecodeError> {
        let sync_bits = bytes_to_bits(&SYNC_WORD.to_be_bytes());
        let start = find_sync(bits, &sync_bits, sync_tolerance).ok_or(DecodeError::NoSync)?;
        let body_start = start + sync_bits.len();
        let header = take_byte(bits, body_start).ok_or(DecodeError::Truncated)?;
        let len = header as usize;
        let total_bytes = 1 + len + 2;
        let mut body = Vec::with_capacity(total_bytes);
        for i in 0..total_bytes {
            body.push(take_byte(bits, body_start + i * 8).ok_or(DecodeError::Truncated)?);
        }
        let (data, trailer) = body.split_at(total_bytes - 2);
        let expected = u16::from_be_bytes([trailer[0], trailer[1]]);
        if crc16_ccitt(data) != expected {
            return Err(DecodeError::BadCrc);
        }
        Ok(Frame {
            payload: data[1..].to_vec(),
        })
    }
}

/// Expand bytes to MSB-first bits.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push(b & (1 << i) != 0);
        }
    }
    bits
}

/// Pack MSB-first bits into bytes (bit count must be a multiple of 8).
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count must be a multiple of 8"
    );
    bits.chunks(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .collect()
}

fn take_byte(bits: &[bool], start: usize) -> Option<u8> {
    if start + 8 > bits.len() {
        return None;
    }
    Some(
        bits[start..start + 8]
            .iter()
            .fold(0u8, |acc, &b| (acc << 1) | b as u8),
    )
}

/// Find the first offset where the Hamming distance to `pattern` is within
/// `tolerance`. Returns the offset of the *start of the pattern*.
fn find_sync(bits: &[bool], pattern: &[bool], tolerance: u32) -> Option<usize> {
    if bits.len() < pattern.len() {
        return None;
    }
    (0..=bits.len() - pattern.len()).find(|&off| {
        let dist: u32 = pattern
            .iter()
            .zip(&bits[off..off + pattern.len()])
            .map(|(a, b)| (a != b) as u32)
            .sum();
        dist <= tolerance
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let f = Frame::new(b"carrier offload".to_vec());
        let bits = f.encode();
        let g = Frame::decode(&bits, 0).expect("decode");
        assert_eq!(f, g);
    }

    #[test]
    fn air_bits_accounting() {
        let f = Frame::new(vec![0u8; 10]);
        assert_eq!(f.air_bits(), (4 + 2 + 1 + 10 + 2) * 8);
        assert_eq!(f.encode().len(), f.air_bits());
    }

    #[test]
    fn empty_payload_ok() {
        let f = Frame::new(Vec::new());
        let bits = f.encode();
        assert_eq!(Frame::decode(&bits, 0).unwrap().payload, Vec::<u8>::new());
    }

    #[test]
    fn tolerates_sync_bit_errors() {
        let f = Frame::new(b"x".to_vec());
        let mut bits = f.encode();
        // Flip two bits inside the sync word (offset: preamble is 32 bits).
        bits[33] = !bits[33];
        bits[40] = !bits[40];
        assert_eq!(Frame::decode(&bits, 2).unwrap(), f);
        assert_eq!(Frame::decode(&bits, 1).unwrap_err(), DecodeError::NoSync);
    }

    #[test]
    fn payload_corruption_caught_by_crc() {
        let f = Frame::new(b"payload".to_vec());
        let mut bits = f.encode();
        let payload_bit = (4 + 2 + 1) * 8 + 3; // inside the payload
        bits[payload_bit] = !bits[payload_bit];
        assert_eq!(Frame::decode(&bits, 0).unwrap_err(), DecodeError::BadCrc);
    }

    #[test]
    fn truncated_stream_detected() {
        let f = Frame::new(b"long enough payload".to_vec());
        let bits = f.encode();
        let cut = &bits[..bits.len() - 20];
        assert_eq!(Frame::decode(cut, 0).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn decode_with_leading_noise() {
        // The receiver usually starts listening mid-air; leading garbage
        // before the preamble must not break sync.
        let f = Frame::new(b"hi".to_vec());
        let mut bits = vec![true, false, false, true, true, false, true];
        bits.extend(f.encode());
        assert_eq!(Frame::decode(&bits, 0).unwrap(), f);
    }

    #[test]
    fn bits_bytes_round_trip() {
        let bytes = vec![0x00, 0xFF, 0xA5, 0x3C];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    #[test]
    #[should_panic(expected = "payload too long")]
    fn oversize_payload_rejected() {
        let _ = Frame::new(vec![0u8; 256]);
    }
}
