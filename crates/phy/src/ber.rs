//! Closed-form bit-error-rate models.
//!
//! The passive-receiver and backscatter links use *noncoherent* envelope
//! detection of OOK. With unit noise variance per envelope dimension and a
//! "1"-symbol envelope amplitude `A`, the detector statistics are:
//!
//! * symbol `0`: Rayleigh envelope, `P(r > b) = exp(-b²/2)`;
//! * symbol `1`: Rician envelope, `P(r < b) = 1 − Q₁(A, b)`;
//!
//! so for threshold `b` the error probability is the average of the two
//! tails, and the receiver picks the `b` that minimizes it. We define the
//! SNR as `γ = A²/2` (average signal power over noise power during a `1`).
//!
//! The active radio and the commercial-reader baseline use coherent
//! detection, giving the usual Q-function expressions.

use braidio_units::math::{marcum_q1, q_function};
use braidio_units::Decibels;

/// BER of noncoherent OOK envelope detection at linear SNR `gamma`
/// (optimal threshold, equiprobable symbols).
pub fn ber_ook_noncoherent(gamma: f64) -> f64 {
    assert!(gamma >= 0.0, "SNR must be non-negative");
    if gamma == 0.0 {
        return 0.5;
    }
    let a = (2.0 * gamma).sqrt();
    // Golden-section search for the optimal threshold in [0, A + 6].
    let pe = |b: f64| 0.5 * ((-0.5 * b * b).exp() + 1.0 - marcum_q1(a, b));
    let (mut lo, mut hi) = (0.0f64, a + 6.0);
    let phi = 0.618_033_988_749_894_9f64;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let (mut f1, mut f2) = (pe(x1), pe(x2));
    for _ in 0..48 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = pe(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = pe(x2);
        }
    }
    pe(0.5 * (lo + hi)).clamp(0.0, 0.5)
}

/// BER of noncoherent OOK at an SNR given in dB.
pub fn ber_ook_noncoherent_db(snr: Decibels) -> f64 {
    ber_ook_noncoherent(snr.linear())
}

/// Fast evaluation of [`ber_ook_noncoherent`] through a lazily built
/// log-log interpolation table (1024 knots over 10⁻³…10⁵ linear SNR,
/// relative error < 10⁻³ — far below any physical uncertainty here).
///
/// The exact Marcum-Q evaluation costs ~10⁵ floating-point operations per
/// call; the characterization layer queries BER inside range bisections and
/// availability scans, so the table pays for itself immediately.
pub fn ber_ook_noncoherent_fast(gamma: f64) -> f64 {
    use std::sync::OnceLock;
    const N: usize = 1024;
    const LO: f64 = 1e-3;
    const HI: f64 = 1e5;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        (0..N)
            .map(|i| {
                let g = LO * (HI / LO).powf(i as f64 / (N - 1) as f64);
                // Store ln(BER); BER is strictly positive on the grid.
                ber_ook_noncoherent(g).max(1e-300).ln()
            })
            .collect()
    });
    if gamma <= LO {
        return 0.5;
    }
    if gamma >= HI {
        return 0.0;
    }
    let pos = (gamma / LO).ln() / (HI / LO).ln() * (N - 1) as f64;
    let i = pos as usize;
    let frac = pos - i as f64;
    let ln_ber = table[i] + frac * (table[i + 1] - table[i]);
    ln_ber.exp().min(0.5)
}

/// The classic high-SNR approximation `½·exp(−γ/4)` for noncoherent OOK,
/// kept for cross-checks and fast sweeps.
pub fn ber_ook_noncoherent_approx(gamma: f64) -> f64 {
    (0.5 * (-gamma / 4.0).exp()).min(0.5)
}

/// BER of coherent OOK detection: `Q(√(γ/2))` with `γ` defined as above.
pub fn ber_coherent(gamma: f64) -> f64 {
    assert!(gamma >= 0.0, "SNR must be non-negative");
    q_function((gamma / 2.0).sqrt())
}

/// BER of coherent detection at an SNR given in dB.
pub fn ber_coherent_db(snr: Decibels) -> f64 {
    ber_coherent(snr.linear())
}

/// BER of noncoherent binary FSK, `½·exp(−γ/2)` — the active radio's
/// envelope when modelled pessimistically (real BLE chips do a bit better;
/// the active link is never the bottleneck in any experiment).
pub fn ber_fsk_noncoherent(gamma: f64) -> f64 {
    (0.5 * (-gamma / 2.0).exp()).min(0.5)
}

/// Packet error rate for `bits` independent bit decisions at error rate
/// `ber`.
pub fn packet_error_rate(ber: f64, bits: usize) -> f64 {
    assert!((0.0..=1.0).contains(&ber), "ber must be a probability");
    1.0 - (1.0 - ber).powi(bits as i32)
}

/// The linear SNR at which a BER model crosses `target`, found by bisection
/// over `[γ_lo, γ_hi]` (model must be monotone decreasing in SNR).
pub fn snr_for_ber(model: impl Fn(f64) -> f64, target: f64, lo: f64, hi: f64) -> f64 {
    assert!(target > 0.0 && target < 0.5);
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if model(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_snr_is_coin_flip() {
        assert!((ber_ook_noncoherent(0.0) - 0.5).abs() < 1e-12);
        assert!((ber_coherent(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn monotone_decreasing_in_snr() {
        let mut prev = 1.0;
        for snr_db in [-5.0, 0.0, 3.0, 6.0, 9.0, 12.0, 15.0] {
            let b = ber_ook_noncoherent_db(Decibels::new(snr_db));
            assert!(b < prev, "BER should fall with SNR (snr {snr_db} dB)");
            prev = b;
        }
    }

    #[test]
    fn tracks_high_snr_approximation() {
        // The exact optimal-threshold BER and ½·exp(−γ/4) agree within a
        // small factor at high SNR.
        for snr_db in [12.0, 14.0, 16.0] {
            let gamma = Decibels::new(snr_db).linear();
            let exact = ber_ook_noncoherent(gamma);
            let approx = ber_ook_noncoherent_approx(gamma);
            let ratio = exact / approx;
            assert!(
                (0.2..=2.0).contains(&ratio),
                "snr {snr_db} dB: exact {exact:.3e} vs approx {approx:.3e}"
            );
        }
    }

    #[test]
    fn coherent_beats_noncoherent() {
        for snr_db in [6.0, 9.0, 12.0] {
            let gamma = Decibels::new(snr_db).linear();
            assert!(
                ber_coherent(gamma) < ber_ook_noncoherent(gamma),
                "coherent must win at {snr_db} dB"
            );
        }
    }

    #[test]
    fn one_percent_ber_near_9db() {
        // The calibration anchor used across the workspace: noncoherent OOK
        // crosses BER = 1e-2 in the 8–11 dB SNR window.
        let gamma = snr_for_ber(ber_ook_noncoherent, 1e-2, 0.1, 1000.0);
        let snr_db = 10.0 * gamma.log10();
        assert!((8.0..=11.5).contains(&snr_db), "1% BER at {snr_db:.2} dB");
    }

    #[test]
    fn per_formula() {
        assert!((packet_error_rate(0.0, 1000) - 0.0).abs() < 1e-12);
        assert!((packet_error_rate(1.0, 8) - 1.0).abs() < 1e-12);
        // Small-ber limit: PER ≈ bits · ber.
        let per = packet_error_rate(1e-6, 1000);
        assert!((per - 1e-3).abs() < 1e-5);
    }

    #[test]
    fn fast_table_tracks_exact_model() {
        for snr_db in [-10.0f64, -3.0, 0.0, 3.0, 6.0, 9.0, 12.0, 15.0, 18.0] {
            let gamma = 10f64.powf(snr_db / 10.0);
            let exact = ber_ook_noncoherent(gamma);
            let fast = ber_ook_noncoherent_fast(gamma);
            let rel = (fast - exact).abs() / exact.max(1e-12);
            assert!(
                rel < 5e-3,
                "snr {snr_db} dB: exact {exact:.6e} fast {fast:.6e}"
            );
        }
        // Out-of-range behaviour.
        assert_eq!(ber_ook_noncoherent_fast(1e-6), 0.5);
        assert_eq!(ber_ook_noncoherent_fast(1e9), 0.0);
    }

    #[test]
    fn snr_for_ber_inverts_model() {
        let target = 1e-3;
        let gamma = snr_for_ber(ber_ook_noncoherent, target, 0.1, 1000.0);
        let back = ber_ook_noncoherent(gamma);
        assert!((back - target).abs() / target < 0.05, "got {back:.3e}");
    }

    #[test]
    fn fsk_between_ook_and_coherent() {
        let gamma = Decibels::new(10.0).linear();
        let fsk = ber_fsk_noncoherent(gamma);
        assert!(fsk < ber_ook_noncoherent_approx(gamma));
        assert!(fsk > ber_coherent(2.0 * gamma) * 0.1);
    }
}
