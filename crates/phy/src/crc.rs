//! CRC-16/CCITT-FALSE frame check sequence.
//!
//! Polynomial `0x1021`, initial value `0xFFFF`, no reflection, no final
//! XOR — the variant used by Bluetooth baseband-adjacent framing and a
//! natural choice for Braidio's packets.

/// CRC-16/CCITT-FALSE over a byte slice.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Verify that `data` followed by its big-endian CRC checks out.
pub fn verify_with_trailer(data_and_crc: &[u8]) -> bool {
    if data_and_crc.len() < 2 {
        return false;
    }
    let (data, trailer) = data_and_crc.split_at(data_and_crc.len() - 2);
    let expected = u16::from_be_bytes([trailer[0], trailer[1]]);
    crc16_ccitt(data) == expected
}

/// Append the big-endian CRC to a payload.
pub fn append_crc(data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    out.extend_from_slice(&crc16_ccitt(data).to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_123456789() {
        // The canonical check value for CRC-16/CCITT-FALSE.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }

    #[test]
    fn append_and_verify_round_trip() {
        let framed = append_crc(b"braidio");
        assert!(verify_with_trailer(&framed));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut framed = append_crc(b"carrier offload");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                framed[byte] ^= 1 << bit;
                assert!(
                    !verify_with_trailer(&framed),
                    "missed flip at byte {byte} bit {bit}"
                );
                framed[byte] ^= 1 << bit;
            }
        }
        assert!(verify_with_trailer(&framed));
    }

    #[test]
    fn detects_swapped_bytes() {
        let mut framed = append_crc(b"ab");
        framed.swap(0, 1);
        assert!(!verify_with_trailer(&framed));
    }

    #[test]
    fn too_short_is_invalid() {
        assert!(!verify_with_trailer(&[]));
        assert!(!verify_with_trailer(&[0x12]));
    }
}
