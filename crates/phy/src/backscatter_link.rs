//! End-to-end waveform-level backscatter link.
//!
//! Everything between "the tag has a frame to send" and "the reader
//! delivered bytes" in one simulated signal path:
//!
//! ```text
//! Frame::encode → LineCode (FM0/Manchester) → tag Γ(t) switching
//!   → phasor superposition with self-interference (BackscatterScene)
//!   → antenna envelope + AWGN → PassiveReceiverChain (pump, HP, amp,
//!     comparator) → BitSync clock recovery → LineCode::decode →
//!     Frame::decode (CRC)
//! ```
//!
//! Unlike [`crate::montecarlo`] (which abstracts the channel to an
//! envelope SNR), this path carries the *phase* of the backscatter signal,
//! so phase-cancellation nulls produce real frame losses — and the
//! frame-level antenna-selection diversity of §3.2 visibly rescues them.

use crate::coding::LineCode;
use crate::fec::{BlockInterleaver, Hamming74};
use crate::frame::{DecodeError, Frame};
use crate::sync::BitSync;
use braidio_circuits::PassiveReceiverChain;
use braidio_rfsim::geometry::Point;
use braidio_rfsim::phase_cancel::BackscatterScene;
use braidio_units::{BitsPerSecond, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a waveform-level link.
#[derive(Debug, Clone)]
pub struct WaveformLink {
    /// The RF scene (carrier, receive antennas, environment).
    pub scene: BackscatterScene,
    /// Tag position in the scene.
    pub tag_at: Point,
    /// Line code on the air.
    pub code: LineCode,
    /// Data bitrate.
    pub rate: BitsPerSecond,
    /// Samples per channel half-symbol (≥ 4 for the synchronizer).
    pub samples_per_symbol: usize,
    /// RMS additive envelope noise at the antenna, volts.
    pub noise_rms: f64,
    /// Receive chain model.
    pub chain: PassiveReceiverChain,
    /// Optional Hamming(7,4) + interleaving over the frame bits (the
    /// coding extension; costs 7/4 airtime, buys single-error correction
    /// per codeword).
    pub fec: Option<BlockInterleaver>,
    /// RNG seed for the noise.
    pub seed: u64,
}

/// Result of one frame transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkResult {
    /// Decoded intact (CRC passed) on the given antenna.
    Delivered {
        /// Index of the receive antenna that decoded the frame.
        antenna: usize,
    },
    /// No antenna produced a valid frame.
    Lost {
        /// The error from the *best* antenna attempt (sync > CRC > trunc).
        reason: DecodeError,
    },
}

impl WaveformLink {
    /// A link over the paper's Fig. 4 scene with FM0 at 100 kbps.
    pub fn paper_scene(tag_at: Point, seed: u64) -> Self {
        WaveformLink {
            scene: BackscatterScene::paper_fig4().with_diversity(),
            tag_at,
            code: LineCode::Fm0,
            rate: BitsPerSecond::KBPS_100,
            samples_per_symbol: 8,
            noise_rms: 1e-5,
            chain: PassiveReceiverChain::braidio(),
            fec: None,
            seed,
        }
    }

    /// Enable Hamming(7,4) FEC with an 8-row interleaver.
    pub fn with_fec(mut self) -> Self {
        self.fec = Some(BlockInterleaver::for_hamming(8));
        self
    }

    /// The envelope sample interval.
    pub fn sample_interval(&self) -> Seconds {
        let half_symbols_per_sec = self.rate.bps() * self.code.expansion() as f64;
        Seconds::new(1.0 / (half_symbols_per_sec * self.samples_per_symbol as f64))
    }

    /// Synthesize the antenna envelope seen at `antenna` while the tag
    /// plays the channel levels.
    fn envelope_at(&self, antenna: usize, levels: &[bool], rng: &mut StdRng) -> Vec<f64> {
        let bg = self.scene.background(antenna);
        let v_on = self
            .scene
            .tag_phasor(self.tag_at, antenna, self.scene.tag.gamma_on);
        let v_off = self
            .scene
            .tag_phasor(self.tag_at, antenna, self.scene.tag.gamma_off);
        let mut out = Vec::with_capacity(levels.len() * self.samples_per_symbol);
        for &level in levels {
            let v = if level { v_on } else { v_off };
            let clean = (bg + v).abs();
            for _ in 0..self.samples_per_symbol {
                // Gaussian envelope noise (Box-Muller), clamped physical.
                let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
                out.push((clean + self.noise_rms * z).max(0.0));
            }
        }
        out
    }

    /// Try to decode from one antenna's envelope.
    fn receive_on(
        &self,
        antenna: usize,
        levels: &[bool],
        rng: &mut StdRng,
    ) -> Result<Frame, DecodeError> {
        let envelope = self.envelope_at(antenna, levels, rng);
        let sliced = self.chain.demodulate(&envelope, self.sample_interval());
        let half_syms = BitSync::new(self.samples_per_symbol).recover(&sliced);
        // Try both level polarities for polarity-sensitive codes; FM0
        // decodes identically either way.
        let attempts: Vec<Vec<bool>> = if self.code.polarity_insensitive() {
            vec![half_syms.clone()]
        } else {
            let flipped = half_syms.iter().map(|&b| !b).collect();
            vec![half_syms.clone(), flipped]
        };
        let mut last = DecodeError::NoSync;
        for cand in attempts {
            // Line-decoding needs even alignment; try both offsets. Use the
            // lossy decoder — settle-time garbage before the preamble must
            // not poison the whole stream (sync search + CRC absorb it).
            for skip in 0..self.code.expansion() {
                if skip >= cand.len() {
                    continue;
                }
                let bits = self.code.decode_lossy(&cand[skip..]);
                if let Some(il) = &self.fec {
                    // The FEC blocks sit *under* the framing, so the block
                    // boundary must be found before the sync word can: try
                    // every alignment within one block.
                    let n = il.rows * il.cols;
                    for offset in 0..n.min(bits.len()) {
                        let mut aligned = bits[offset..].to_vec();
                        aligned.truncate(aligned.len() / n * n);
                        if aligned.is_empty() {
                            break;
                        }
                        let (decoded, _) = Hamming74.decode(&il.deinterleave(&aligned));
                        match Frame::decode(&decoded, 2) {
                            Ok(frame) => return Ok(frame),
                            Err(e) => last = e,
                        }
                    }
                } else {
                    match Frame::decode(&bits, 2) {
                        Ok(frame) => return Ok(frame),
                        Err(e) => last = e,
                    }
                }
            }
        }
        Err(last)
    }

    /// Transmit a frame, trying each receive antenna in turn
    /// (frame-level selection diversity).
    pub fn transmit(&self, frame: &Frame) -> LinkResult {
        let mut bits = frame.encode();
        if let Some(il) = &self.fec {
            bits = il.interleave(&Hamming74.encode(&bits));
        }
        let levels = self.code.encode(&bits);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut last = DecodeError::NoSync;
        for antenna in 0..self.scene.rx_antennas.len() {
            match self.receive_on(antenna, &levels, &mut rng) {
                Ok(decoded) if decoded == *frame => {
                    return LinkResult::Delivered { antenna };
                }
                Ok(_) => last = DecodeError::BadCrc,
                Err(e) => last = e,
            }
        }
        LinkResult::Lost { reason: last }
    }

    /// Frame delivery ratio over `n` transmissions with varying noise.
    pub fn delivery_ratio(&self, frame: &Frame, n: usize) -> f64 {
        let mut delivered = 0usize;
        for i in 0..n {
            let mut link = self.clone();
            link.seed = self.seed.wrapping_add(i as u64);
            if matches!(link.transmit(frame), LinkResult::Delivered { .. }) {
                delivered += 1;
            }
        }
        delivered as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::new(b"waveform braid".to_vec())
    }

    #[test]
    fn clean_spot_delivers() {
        // A tag position with strong SNR away from nulls.
        let link = WaveformLink::paper_scene(Point::new(1.0, 1.0), 1);
        assert!(
            matches!(link.transmit(&frame()), LinkResult::Delivered { .. }),
            "{:?}",
            link.transmit(&frame())
        );
    }

    #[test]
    fn manchester_also_works() {
        let mut link = WaveformLink::paper_scene(Point::new(1.0, 1.0), 2);
        link.code = LineCode::Manchester;
        assert!(matches!(
            link.transmit(&frame()),
            LinkResult::Delivered { .. }
        ));
    }

    #[test]
    fn null_kills_single_antenna_diversity_rescues() {
        // Find a deep single-antenna null along the Fig. 4c cut — deep
        // enough that the amplified envelope contrast falls below the
        // comparator's hysteresis (no edges at all) — where the second
        // antenna still has solid margin.
        let diverse = BackscatterScene::paper_fig4().with_diversity();
        let mut null_at = None;
        for i in 0..4000 {
            let x = 1.3 + 0.7 * i as f64 / 3999.0;
            let p = Point::new(x, 0.5);
            let s0 = diverse.snr(p, 0).db();
            let s1 = diverse.snr(p, 1).db();
            if s0 < -25.0 && s1 > 3.0 {
                null_at = Some(p);
                break;
            }
        }
        let p = null_at.expect("a rescued null exists along the cut");

        let mut single = WaveformLink::paper_scene(p, 3);
        single.noise_rms = 3e-6;
        single.scene = BackscatterScene::paper_fig4(); // one antenna
        assert!(
            matches!(single.transmit(&frame()), LinkResult::Lost { .. }),
            "single antenna in a null should fail"
        );

        let mut diverse_link = WaveformLink::paper_scene(p, 3);
        diverse_link.noise_rms = 3e-6;
        let result = diverse_link.transmit(&frame());
        assert!(
            matches!(result, LinkResult::Delivered { antenna: 1 }),
            "diversity should rescue via antenna 1, got {result:?}"
        );
    }

    #[test]
    fn heavy_noise_loses_frames() {
        let mut link = WaveformLink::paper_scene(Point::new(1.0, 1.6), 4);
        link.noise_rms = 0.05; // far above the backscatter amplitude
        assert!(matches!(link.transmit(&frame()), LinkResult::Lost { .. }));
    }

    #[test]
    fn delivery_ratio_degrades_with_distance() {
        let near = WaveformLink::paper_scene(Point::new(1.0, 0.9), 5);
        let mut far = WaveformLink::paper_scene(Point::new(1.0, 1.9), 5);
        // Same noise for both; the far tag has ~12 dB less backscatter.
        far.noise_rms = near.noise_rms * 8.0;
        let near_ratio = {
            let mut n = near.clone();
            n.noise_rms = far.noise_rms;
            n.delivery_ratio(&frame(), 10)
        };
        let far_ratio = far.delivery_ratio(&frame(), 10);
        assert!(
            near_ratio >= far_ratio,
            "near {near_ratio} vs far {far_ratio}"
        );
        assert!(
            near_ratio > 0.8,
            "near link should mostly work: {near_ratio}"
        );
    }

    #[test]
    fn fec_round_trips_on_a_clean_link() {
        let link = WaveformLink::paper_scene(Point::new(1.0, 1.0), 11).with_fec();
        assert!(
            matches!(link.transmit(&frame()), LinkResult::Delivered { .. }),
            "{:?}",
            link.transmit(&frame())
        );
    }

    #[test]
    fn fec_extends_the_noise_margin() {
        // At a noise level where the uncoded link mostly fails, the coded
        // link mostly succeeds (single-error correction per codeword).
        let base = WaveformLink::paper_scene(Point::new(1.0, 1.55), 17);
        let mut noisy = base.clone();
        // Tune to the uncoded waterfall edge.
        noisy.noise_rms = 2.2e-5;
        let coded = noisy.clone().with_fec();
        let f = frame();
        let uncoded_ratio = noisy.delivery_ratio(&f, 12);
        let coded_ratio = coded.delivery_ratio(&f, 12);
        assert!(
            coded_ratio > uncoded_ratio,
            "coded {coded_ratio} vs uncoded {uncoded_ratio}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let link = WaveformLink::paper_scene(Point::new(1.0, 1.2), 9);
        let a = format!("{:?}", link.transmit(&frame()));
        let b = format!("{:?}", link.transmit(&frame()));
        assert_eq!(a, b);
    }
}
