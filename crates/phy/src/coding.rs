//! Line coding for detector-based links: Manchester and FM0.
//!
//! A bare OOK bitstream through a high-pass-coupled envelope detector has a
//! baseline-wander problem: long runs of identical bits decay through the
//! AC coupling (see `braidio-circuits::filter`). Backscatter standards
//! therefore use DC-balanced line codes — EPC Gen2 tags use FM0/Miller,
//! Moo/WISP downlinks use PIE/Manchester variants. We implement the two
//! classic ones:
//!
//! * **Manchester**: each bit becomes two half-symbols, `1 → 10`, `0 → 01`;
//!   guaranteed transition mid-bit, 2× bandwidth.
//! * **FM0 (bi-phase space)**: a transition at *every* symbol boundary and
//!   an extra mid-symbol transition for `0`; same 2× bandwidth but encodes
//!   by transition placement, so it is polarity-insensitive.

/// A line code transforming data bits into channel half-symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineCode {
    /// No coding (raw NRZ/OOK).
    Nrz,
    /// Manchester (IEEE convention: `1 → 10`, `0 → 01`).
    Manchester,
    /// FM0 bi-phase space coding.
    Fm0,
}

impl LineCode {
    /// Channel half-symbols emitted per data bit.
    pub fn expansion(self) -> usize {
        match self {
            LineCode::Nrz => 1,
            LineCode::Manchester | LineCode::Fm0 => 2,
        }
    }

    /// Encode data bits into channel levels.
    pub fn encode(self, bits: &[bool]) -> Vec<bool> {
        match self {
            LineCode::Nrz => bits.to_vec(),
            LineCode::Manchester => {
                let mut out = Vec::with_capacity(bits.len() * 2);
                for &b in bits {
                    if b {
                        out.push(true);
                        out.push(false);
                    } else {
                        out.push(false);
                        out.push(true);
                    }
                }
                out
            }
            LineCode::Fm0 => {
                // State = current line level; invert at every bit boundary,
                // and additionally mid-bit for a 0.
                let mut out = Vec::with_capacity(bits.len() * 2);
                let mut level = true;
                for &b in bits {
                    level = !level; // boundary transition
                    out.push(level);
                    if !b {
                        level = !level; // mid-bit transition for 0
                    }
                    out.push(level);
                }
                out
            }
        }
    }

    /// Decode channel levels back into data bits. Returns `None` if the
    /// stream length is not a whole number of symbols or (for Manchester)
    /// an illegal symbol is found.
    pub fn decode(self, levels: &[bool]) -> Option<Vec<bool>> {
        match self {
            LineCode::Nrz => Some(levels.to_vec()),
            LineCode::Manchester => {
                if !levels.len().is_multiple_of(2) {
                    return None;
                }
                levels
                    .chunks(2)
                    .map(|pair| match (pair[0], pair[1]) {
                        (true, false) => Some(true),
                        (false, true) => Some(false),
                        _ => None, // illegal: no mid-bit transition
                    })
                    .collect()
            }
            LineCode::Fm0 => {
                if !levels.len().is_multiple_of(2) {
                    return None;
                }
                // A bit is 1 when the two half-symbols agree (no mid-bit
                // transition) — polarity never matters.
                Some(levels.chunks(2).map(|pair| pair[0] == pair[1]).collect())
            }
        }
    }

    /// Decode leniently: illegal symbols (possible during comparator
    /// settling or around bit-slips) decode to an arbitrary `false` instead
    /// of failing the whole stream — the frame layer's sync search and CRC
    /// take care of the residue. Odd trailing half-symbols are dropped.
    pub fn decode_lossy(self, levels: &[bool]) -> Vec<bool> {
        match self {
            LineCode::Nrz => levels.to_vec(),
            LineCode::Manchester => levels
                .chunks_exact(2)
                .map(|pair| match (pair[0], pair[1]) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => false,
                })
                .collect(),
            LineCode::Fm0 => levels
                .chunks_exact(2)
                .map(|pair| pair[0] == pair[1])
                .collect(),
        }
    }

    /// Maximum run length of identical channel levels this code can emit
    /// (what the AC-coupling droop sees).
    pub fn max_run_length(self) -> Option<usize> {
        match self {
            LineCode::Nrz => None, // unbounded
            LineCode::Manchester | LineCode::Fm0 => Some(2),
        }
    }

    /// Is the code insensitive to a global polarity flip (comparator
    /// inversion)?
    pub fn polarity_insensitive(self) -> bool {
        matches!(self, LineCode::Fm0)
    }
}

/// DC balance of a level stream: mean of ±1 levels (0 = perfectly
/// balanced). The figure the high-pass filter cares about.
pub fn dc_balance(levels: &[bool]) -> f64 {
    if levels.is_empty() {
        return 0.0;
    }
    let sum: f64 = levels.iter().map(|&b| if b { 1.0 } else { -1.0 }).sum();
    sum / levels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<Vec<bool>> {
        vec![
            vec![],
            vec![true],
            vec![false],
            vec![true; 64],
            vec![false; 64],
            (0..64).map(|i| i % 2 == 0).collect(),
            (0..64).map(|i| (i * 7) % 3 == 0).collect(),
        ]
    }

    #[test]
    fn round_trips() {
        for code in [LineCode::Nrz, LineCode::Manchester, LineCode::Fm0] {
            for bits in patterns() {
                let enc = code.encode(&bits);
                assert_eq!(enc.len(), bits.len() * code.expansion());
                assert_eq!(code.decode(&enc).unwrap(), bits, "{code:?} {bits:?}");
            }
        }
    }

    #[test]
    fn manchester_is_dc_balanced_always() {
        for bits in patterns() {
            let enc = LineCode::Manchester.encode(&bits);
            assert_eq!(dc_balance(&enc), 0.0, "{bits:?}");
        }
    }

    #[test]
    fn fm0_balance_bounded_even_on_runs() {
        // All-ones is FM0's worst case (no mid-bit transitions) but the
        // boundary transitions alone keep it perfectly alternating.
        let enc = LineCode::Fm0.encode(&[true; 100]);
        assert!(dc_balance(&enc).abs() < 0.02);
        // All-zeros: transitions everywhere, balanced too.
        let enc = LineCode::Fm0.encode(&[false; 100]);
        assert!(dc_balance(&enc).abs() < 0.02);
    }

    #[test]
    fn nrz_runs_unbounded_coded_runs_bounded() {
        let long_run = vec![true; 50];
        let nrz = LineCode::Nrz.encode(&long_run);
        assert!(nrz.iter().all(|&b| b)); // 50-long run, droop city
        for code in [LineCode::Manchester, LineCode::Fm0] {
            let enc = code.encode(&long_run);
            let mut max_run = 1;
            let mut run = 1;
            for w in enc.windows(2) {
                if w[0] == w[1] {
                    run += 1;
                    max_run = max_run.max(run);
                } else {
                    run = 1;
                }
            }
            assert!(
                max_run <= code.max_run_length().unwrap(),
                "{code:?} run {max_run}"
            );
        }
    }

    #[test]
    fn fm0_survives_polarity_flip() {
        let bits: Vec<bool> = (0..40).map(|i| (i * 5) % 7 < 3).collect();
        let enc = LineCode::Fm0.encode(&bits);
        let flipped: Vec<bool> = enc.iter().map(|&b| !b).collect();
        assert_eq!(LineCode::Fm0.decode(&flipped).unwrap(), bits);
        // Manchester decodes a flip into the complement (or errors).
        let menc = LineCode::Manchester.encode(&bits);
        let mflipped: Vec<bool> = menc.iter().map(|&b| !b).collect();
        let decoded = LineCode::Manchester.decode(&mflipped).unwrap();
        assert_ne!(decoded, bits);
    }

    #[test]
    fn manchester_rejects_illegal_symbols() {
        // `11` is not a valid Manchester symbol.
        assert!(LineCode::Manchester.decode(&[true, true]).is_none());
        assert!(LineCode::Manchester.decode(&[true]).is_none()); // odd length
    }

    #[test]
    fn lossy_decode_matches_strict_on_clean_streams() {
        for code in [LineCode::Nrz, LineCode::Manchester, LineCode::Fm0] {
            for bits in patterns() {
                let enc = code.encode(&bits);
                assert_eq!(code.decode_lossy(&enc), code.decode(&enc).unwrap());
            }
        }
    }

    #[test]
    fn lossy_decode_survives_garbage() {
        // Corrupt one half-symbol into an illegal Manchester pair: strict
        // decode dies, lossy decode returns the right length with at most
        // one wrong bit.
        let bits: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let mut enc = LineCode::Manchester.encode(&bits);
        enc[10] = enc[11]; // make pair 5 illegal
        assert!(LineCode::Manchester.decode(&enc).is_none());
        let lossy = LineCode::Manchester.decode_lossy(&enc);
        assert_eq!(lossy.len(), bits.len());
        let errors = lossy.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert!(errors <= 1);
    }

    #[test]
    fn fm0_every_boundary_has_transition() {
        let bits: Vec<bool> = (0..32).map(|i| i % 5 == 0).collect();
        let enc = LineCode::Fm0.encode(&bits);
        for i in (2..enc.len()).step_by(2) {
            assert_ne!(enc[i - 1], enc[i], "missing boundary transition at {i}");
        }
    }
}
