//! Forward error correction: Hamming(7,4) with interleaving.
//!
//! The paper's links are declared operational at BER < 10⁻², where a
//! 2000-bit frame still fails more often than not; the related work it
//! cites ("Turbocharging ambient backscatter", ref. \[41\]) attacks
//! exactly this with coding. We provide the classic single-error-correcting
//! Hamming(7,4) — cheap enough for an ATMEGA — plus a block interleaver so
//! fading bursts are spread into correctable single errors, and the
//! closed-form post-FEC BER used to size the gain.

/// Hamming(7,4) systematic encoder/decoder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hamming74;

impl Hamming74 {
    /// Code rate (payload bits per channel bit).
    pub const RATE: f64 = 4.0 / 7.0;

    /// Encode a nibble (low 4 bits) into a 7-bit codeword (low 7 bits).
    ///
    /// Bit layout (LSB first): `[d0 d1 d2 d3 p0 p1 p2]` with
    /// `p0 = d0⊕d1⊕d3`, `p1 = d0⊕d2⊕d3`, `p2 = d1⊕d2⊕d3`.
    pub fn encode_nibble(self, nibble: u8) -> u8 {
        let d = [
            nibble & 1,
            (nibble >> 1) & 1,
            (nibble >> 2) & 1,
            (nibble >> 3) & 1,
        ];
        let p0 = d[0] ^ d[1] ^ d[3];
        let p1 = d[0] ^ d[2] ^ d[3];
        let p2 = d[1] ^ d[2] ^ d[3];
        nibble & 0x0F | (p0 << 4) | (p1 << 5) | (p2 << 6)
    }

    /// Decode a 7-bit codeword, correcting up to one bit error. Returns the
    /// nibble and whether a correction was applied.
    pub fn decode_codeword(self, word: u8) -> (u8, bool) {
        let b = |i: u8| (word >> i) & 1;
        let s0 = b(0) ^ b(1) ^ b(3) ^ b(4);
        let s1 = b(0) ^ b(2) ^ b(3) ^ b(5);
        let s2 = b(1) ^ b(2) ^ b(3) ^ b(6);
        let syndrome = (s0, s1, s2);
        // Map the syndrome to the erroneous bit position (LSB-first layout).
        let flip = match syndrome {
            (0, 0, 0) => None,
            (1, 1, 0) => Some(0),
            (1, 0, 1) => Some(1),
            (0, 1, 1) => Some(2),
            (1, 1, 1) => Some(3),
            (1, 0, 0) => Some(4),
            (0, 1, 0) => Some(5),
            (0, 0, 1) => Some(6),
            _ => unreachable!(),
        };
        let corrected = match flip {
            Some(i) => word ^ (1 << i),
            None => word,
        };
        (corrected & 0x0F, flip.is_some())
    }

    /// Encode a bit stream (padded with zeros to a nibble boundary).
    pub fn encode(self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(bits.len() * 7 / 4 + 7);
        for chunk in bits.chunks(4) {
            let mut nibble = 0u8;
            for (i, &b) in chunk.iter().enumerate() {
                nibble |= (b as u8) << i;
            }
            let cw = self.encode_nibble(nibble);
            for i in 0..7 {
                out.push((cw >> i) & 1 == 1);
            }
        }
        out
    }

    /// Decode a bit stream; truncated trailing codewords are dropped.
    /// Returns `(bits, corrections)`.
    pub fn decode(self, bits: &[bool]) -> (Vec<bool>, usize) {
        let mut out = Vec::with_capacity(bits.len() * 4 / 7 + 4);
        let mut corrections = 0usize;
        for chunk in bits.chunks_exact(7) {
            let mut word = 0u8;
            for (i, &b) in chunk.iter().enumerate() {
                word |= (b as u8) << i;
            }
            let (nibble, fixed) = self.decode_codeword(word);
            corrections += fixed as usize;
            for i in 0..4 {
                out.push((nibble >> i) & 1 == 1);
            }
        }
        (out, corrections)
    }

    /// Post-decoding bit error rate for a channel BER `p`, assuming
    /// independent errors: a codeword fails when ≥ 2 of its 7 bits flip,
    /// and a failed word corrupts roughly half its payload bits on average
    /// (upper-bounded here by all 4, the conservative convention).
    pub fn coded_ber(self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        let q = 1.0 - p;
        let p_word_ok = q.powi(7) + 7.0 * p * q.powi(6);
        (1.0 - p_word_ok).min(1.0) * 0.5 // average fraction of payload bits corrupted in a bad word
    }
}

/// A block interleaver: writes row-wise, reads column-wise, spreading a
/// burst of up to `rows` adjacent channel errors across distinct codewords.
#[derive(Debug, Clone, Copy)]
pub struct BlockInterleaver {
    /// Number of rows (burst tolerance).
    pub rows: usize,
    /// Number of columns (codeword span).
    pub cols: usize,
}

impl BlockInterleaver {
    /// An interleaver sized for 7-bit codewords.
    pub fn for_hamming(rows: usize) -> Self {
        BlockInterleaver { rows, cols: 7 }
    }

    /// Interleave exactly `rows × cols` bits (pads with `false`).
    pub fn interleave(&self, bits: &[bool]) -> Vec<bool> {
        let n = self.rows * self.cols;
        let mut padded = bits.to_vec();
        padded.resize(bits.len().div_ceil(n) * n, false);
        let mut out = Vec::with_capacity(padded.len());
        for block in padded.chunks(n) {
            for c in 0..self.cols {
                for r in 0..self.rows {
                    out.push(block[r * self.cols + c]);
                }
            }
        }
        out
    }

    /// Inverse of [`BlockInterleaver::interleave`].
    pub fn deinterleave(&self, bits: &[bool]) -> Vec<bool> {
        let n = self.rows * self.cols;
        assert!(
            bits.len().is_multiple_of(n),
            "deinterleave needs whole blocks"
        );
        let mut out = Vec::with_capacity(bits.len());
        for block in bits.chunks(n) {
            for r in 0..self.rows {
                for c in 0..self.cols {
                    out.push(block[c * self.rows + r]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nibbles_round_trip() {
        let h = Hamming74;
        for n in 0..16u8 {
            let cw = h.encode_nibble(n);
            let (dec, fixed) = h.decode_codeword(cw);
            assert_eq!(dec, n);
            assert!(!fixed);
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let h = Hamming74;
        for n in 0..16u8 {
            let cw = h.encode_nibble(n);
            for bit in 0..7 {
                let (dec, fixed) = h.decode_codeword(cw ^ (1 << bit));
                assert_eq!(dec, n, "nibble {n:x}, flipped bit {bit}");
                assert!(fixed);
            }
        }
    }

    #[test]
    fn stream_round_trip_with_scattered_errors() {
        let h = Hamming74;
        let bits: Vec<bool> = (0..200).map(|i| (i * 11) % 5 < 2).collect();
        let mut coded = h.encode(&bits);
        // One error per codeword: fully correctable.
        for w in 0..coded.len() / 7 {
            let idx = w * 7 + (w % 7);
            coded[idx] = !coded[idx];
        }
        let (decoded, corrections) = h.decode(&coded);
        assert_eq!(&decoded[..bits.len()], &bits[..]);
        assert_eq!(corrections, coded.len() / 7);
    }

    #[test]
    fn interleaver_round_trip() {
        let il = BlockInterleaver::for_hamming(8);
        let bits: Vec<bool> = (0..8 * 7 * 3).map(|i| i % 3 == 0).collect();
        let shuffled = il.interleave(&bits);
        assert_eq!(il.deinterleave(&shuffled), bits);
        assert_ne!(shuffled, bits);
    }

    #[test]
    fn interleaving_turns_a_burst_into_singles() {
        let h = Hamming74;
        let il = BlockInterleaver::for_hamming(8);
        let bits: Vec<bool> = (0..8 * 4).map(|i| i % 2 == 0).collect(); // 8 codewords
        let coded = h.encode(&bits);
        let mut on_air = il.interleave(&coded);
        // An 8-bit burst on the air...
        for b in on_air[12..20].iter_mut() {
            *b = !*b;
        }
        let received = il.deinterleave(&on_air);
        let (decoded, _) = h.decode(&received);
        assert_eq!(
            &decoded[..bits.len()],
            &bits[..],
            "burst should be fully corrected"
        );
        // ...which WITHOUT interleaving would corrupt data.
        let mut no_il = coded.clone();
        for b in no_il[12..20].iter_mut() {
            *b = !*b;
        }
        let (bad, _) = h.decode(&no_il);
        assert_ne!(&bad[..bits.len()], &bits[..]);
    }

    #[test]
    fn coded_ber_beats_raw_where_it_matters() {
        let h = Hamming74;
        // At the operational threshold (1e-2) coding wins by ~10x.
        let raw = 1e-2;
        let coded = h.coded_ber(raw);
        assert!(coded < raw / 5.0, "coded {coded:.2e} vs raw {raw:.2e}");
        // At very high BER the rate loss dominates and coding can't help.
        assert!(h.coded_ber(0.4) > 0.2);
        assert_eq!(h.coded_ber(0.0), 0.0);
    }
}
