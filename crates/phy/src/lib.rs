//! Physical layer for the Braidio reproduction.
//!
//! * [`modulation`] — OOK/ASK baseband waveform generation (the modulation
//!   the passive and backscatter modes use) and the FSK parameters of the
//!   active radio.
//! * [`crc`] — CRC-16/CCITT, the frame check sequence.
//! * [`frame`] — preamble + sync + length + payload + FCS framing, with
//!   error-tolerant preamble correlation.
//! * [`ber`] — closed-form bit-error-rate models: noncoherent envelope
//!   detection (Rayleigh/Rician threshold statistics via the Marcum
//!   Q-function) for the passive/backscatter links, coherent detection for
//!   the active radio and the commercial-reader baseline.
//! * [`coding`] — Manchester and FM0 line codes: DC balance for the
//!   AC-coupled detector chain, polarity insensitivity for FM0.
//! * [`sync`] — early/late bit synchronizer recovering decisions from the
//!   oversampled comparator stream.
//! * [`fec`] — Hamming(7,4) + block interleaving for the lossy regime
//!   edges (the coding direction of the related work the paper cites).
//! * [`noise`] — streaming additive Gaussian envelope corruption with a
//!   fixed RNG draw-order contract.
//! * [`montecarlo`] — end-to-end Monte-Carlo BER through the
//!   `braidio-circuits` receive chain, used to validate the closed forms;
//!   fused with [`noise`] and the streaming chain into a zero-allocation
//!   per-sample loop.
//! * [`surface`] — lazily evaluated BER response surfaces: memoized
//!   exact solves plus optional monotone interpolation over an SNR grid,
//!   shared process-wide by the figure and MAC paths.
//! * [`backscatter_link`] — the full waveform path: frame → line code →
//!   tag switching → phasor channel with self-interference → chain → clock
//!   recovery → decode, including frame-level antenna diversity.

#![warn(missing_docs)]

pub mod backscatter_link;
pub mod ber;
pub mod coding;
pub mod crc;
pub mod fec;
pub mod frame;
pub mod modulation;
pub mod montecarlo;
pub mod noise;
pub mod pie;
pub mod surface;
pub mod sync;

pub use ber::{ber_coherent, ber_ook_noncoherent};
pub use frame::Frame;
pub use modulation::OokModulator;
