//! Monte-Carlo BER through the real receive chain.
//!
//! The closed forms in [`crate::ber`] assume an ideal envelope detector with
//! an optimal threshold. This module transmits actual random bits through
//! the `braidio-circuits` passive chain — matching boost, square-law pump,
//! attack/decay detector, high-pass, amplifier, comparator — with additive
//! Gaussian envelope noise, and counts errors. It validates the closed
//! forms and exposes the chain's real-world penalties (ISI at high
//! bitrates, settling, hysteresis).
//!
//! ## Fused streaming evaluation
//!
//! A chunk is evaluated as one fused per-sample loop: the OOK level, the
//! additive Gaussian corruption ([`crate::noise`]) and all five receive
//! stages ([`braidio_circuits::StreamingChain`]) touch each sample exactly
//! once, and only the per-bit decision instants are retained. No waveform
//! or stage vector is ever materialized — a chunk's heap footprint is the
//! bit vector alone, O(1) allocations regardless of samples-per-bit
//! (asserted by the counting-allocator test below). The RNG draw order
//! (all data bits first, then two uniforms per sample) and every
//! arithmetic operation match the original batch pipeline, so estimates
//! are bit-identical to it.
//!
//! ## Chunked bit stream
//!
//! A run is split into independent bursts of at most [`CHUNK_BITS`] data
//! bits. Each chunk carries its own training preamble and draws its bits
//! and noise from its own RNG stream, seeded by a pure function of the run
//! seed and the chunk index ([`chunk_seed`]). Chunks are therefore
//! order-independent: they are evaluated concurrently on the
//! `braidio_pool` work pool and merged in index order, so a run's
//! [`BerEstimate`] is bit-identical at any thread count. The chunking
//! *redefines* the simulated bit stream relative to a single monolithic
//! burst — one long transmission becomes `ceil(bits / CHUNK_BITS)` short
//! ones — but every chunk still settles through its own preamble, so the
//! estimator targets the same steady-state BER.

use crate::modulation::OokModulator;
use crate::noise::GaussianEnvelopeNoise;
use braidio_circuits::PassiveReceiverChain;
use braidio_pool as pool;
use braidio_units::{BitsPerSecond, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum number of data bits simulated per independent chunk.
///
/// Small enough that the 10k–100k-bit calibration runs expose parallelism,
/// large enough that the 16-bit training preamble stays a small overhead.
pub const CHUNK_BITS: usize = 4096;

/// The RNG seed of chunk `chunk` of a run started with `seed`.
///
/// A SplitMix64-style finalizer over the pair: a pure function of its
/// arguments, so the bit stream of every chunk is fixed regardless of
/// which thread evaluates it or in what order.
pub fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed.wrapping_add(chunk.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of a Monte-Carlo BER run.
#[derive(Debug, Clone)]
pub struct MonteCarloBer {
    /// The receive chain under test.
    pub chain: PassiveReceiverChain,
    /// Envelope amplitude of a `1` symbol at the antenna, volts.
    pub envelope_high: f64,
    /// Envelope amplitude of a `0` symbol (residual reflection).
    pub envelope_low: f64,
    /// RMS additive envelope noise at the antenna, volts.
    pub noise_rms: f64,
    /// Bitrate under test.
    pub rate: BitsPerSecond,
    /// Samples per bit.
    pub samples_per_bit: usize,
    /// Number of data bits per run.
    pub bits: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct BerEstimate {
    /// Bits compared.
    pub bits: usize,
    /// Bit errors observed.
    pub errors: usize,
}

impl BerEstimate {
    /// The estimated bit error rate.
    pub fn ber(&self) -> f64 {
        self.errors as f64 / self.bits as f64
    }
}

impl MonteCarloBer {
    /// A run at the given envelope SNR (`high²/2 / noise²`, measured in the
    /// detector bandwidth) with sensible defaults.
    ///
    /// The envelope is sampled on a fixed physical grid (20 MS/s) so the
    /// white detector noise occupies the same bandwidth at every bitrate —
    /// slower bitrates then differ only through settling and ISI, as in
    /// hardware, not through an artificial noise-bandwidth change.
    pub fn at_snr_db(snr_db: f64, rate: BitsPerSecond, bits: usize, seed: u64) -> Self {
        Self::at_snr(10f64.powf(snr_db / 10.0), rate, bits, seed)
    }

    /// As [`MonteCarloBer::at_snr_db`] but taking the SNR as a linear power
    /// ratio `gamma` directly, avoiding a dB round-trip for callers (the
    /// BER response surface) that already hold the linear value.
    pub fn at_snr(gamma: f64, rate: BitsPerSecond, bits: usize, seed: u64) -> Self {
        let high = 0.05f64; // comfortably above chain sensitivity
        let chain = PassiveReceiverChain::braidio();
        let sample_rate = 20e6f64;
        let samples_per_bit = ((sample_rate / rate.bps()).round() as usize).max(10);
        // `snr_db` is defined in the detector's noise-equivalent bandwidth.
        // The follower is asymmetric: upward noise excursions are tracked at
        // the attack rate, downward ones released at the decay rate, so the
        // effective noise bandwidth sits between 1/(4·τ_attack) and
        // 1/(4·τ_decay); the geometric mean models the rectified fluctuation
        // power well (validated against the closed form in
        // `braidio-bench::validation`). The white noise we inject is spread
        // over the full sampling Nyquist bandwidth, so the per-sample RMS is
        // scaled so the detector-band portion matches the requested SNR.
        let tau_eff = (chain.detector.attack.seconds() * chain.detector.decay.seconds()).sqrt();
        let detector_bw = 1.0 / (4.0 * tau_eff);
        let nyquist = sample_rate / 2.0;
        let noise_in_band = (high * high / 2.0 / gamma).sqrt();
        let noise_rms = noise_in_band * (nyquist / detector_bw).sqrt();
        MonteCarloBer {
            chain,
            envelope_high: high,
            envelope_low: 0.0,
            noise_rms,
            rate,
            samples_per_bit,
            bits,
            seed,
        }
    }

    /// Run the experiment: evaluate the run's chunks concurrently and merge
    /// their counts in index order (see the module docs on chunking).
    pub fn run(&self) -> BerEstimate {
        let nchunks = self.bits.div_ceil(CHUNK_BITS);
        let estimates = pool::par_map_indexed(nchunks, |c| {
            let nbits = CHUNK_BITS.min(self.bits - c * CHUNK_BITS);
            self.run_chunk(nbits, chunk_seed(self.seed, c as u64))
        });
        estimates
            .iter()
            .fold(BerEstimate { bits: 0, errors: 0 }, |acc, e| BerEstimate {
                bits: acc.bits + e.bits,
                errors: acc.errors + e.errors,
            })
    }

    /// One independent burst of `nbits` data bits behind a fresh training
    /// preamble, with its own RNG stream.
    ///
    /// This is the fused hot loop: modulation level, Gaussian corruption
    /// and the five-stage streaming chain run per sample, retaining only
    /// each bit's decision instant. Public so the allocator and equality
    /// tests can exercise a single chunk directly; everything else should
    /// go through [`MonteCarloBer::run`].
    pub fn run_chunk(&self, nbits: usize, seed: u64) -> BerEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        // Leading training bits let the high-pass and comparator settle and
        // are excluded from the count (they play the preamble's role).
        let training = 16usize;
        let mut bits: Vec<bool> = Vec::with_capacity(training + nbits);
        for i in 0..training {
            bits.push(i % 2 == 0);
        }
        for _ in 0..nbits {
            bits.push(rng.random_bool(0.5));
        }

        let modulator = OokModulator::new(self.samples_per_bit, self.envelope_high, {
            // OokModulator requires high > low; allow a zero low level.
            self.envelope_low
        });
        let dt = modulator.sample_interval(self.rate);
        // The RNG moves to the noise source after the bit draws, keeping
        // the chunk's overall draw order identical to the batch pipeline.
        let mut noise = GaussianEnvelopeNoise::new(rng, self.noise_rms);
        let mut chain = self.chain.streaming(dt);
        // Where within a bit the settled envelope is sampled, matching
        // `modulator.decision_index(i) - i * samples_per_bit`.
        let decision_offset = (3 * self.samples_per_bit) / 4;

        let mut errors = 0usize;
        for (i, &bit) in bits.iter().enumerate() {
            let level = modulator.level(bit);
            let mut decided = false;
            for s in 0..self.samples_per_bit {
                let out = chain.push(noise.corrupt(level));
                if s == decision_offset {
                    decided = out;
                }
            }
            if i >= training && decided != bit {
                errors += 1;
            }
        }
        BerEstimate {
            bits: nbits,
            errors,
        }
    }

    /// The sample interval used by the run.
    pub fn sample_interval(&self) -> Seconds {
        Seconds::new(1.0 / (self.rate.bps() * self.samples_per_bit as f64))
    }
}

/// A counting wrapper around the system allocator, installed only in the
/// crate's test binary so the zero-allocation claim about the fused chunk
/// loop is *asserted*, not just documented. The counter is thread-local
/// (const-initialized, so reading it never allocates) to keep concurrently
/// running tests from polluting each other's counts.
#[cfg(test)]
mod test_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    struct CountingAllocator;

    // SAFETY: delegates all allocation to `System`; only bookkeeping added.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTING: CountingAllocator = CountingAllocator;

    /// Heap allocations performed by the current thread so far.
    pub fn current() -> u64 {
        ALLOCATIONS.with(|c| c.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::ber_ook_noncoherent;

    #[test]
    fn clean_channel_is_error_free() {
        let mc = MonteCarloBer::at_snr_db(40.0, BitsPerSecond::KBPS_100, 400, 1);
        let est = mc.run();
        assert_eq!(est.errors, 0, "ber {}", est.ber());
    }

    #[test]
    fn noisy_channel_produces_errors() {
        let mc = MonteCarloBer::at_snr_db(2.0, BitsPerSecond::KBPS_100, 2000, 2);
        let est = mc.run();
        assert!(est.ber() > 0.02, "ber {}", est.ber());
    }

    #[test]
    fn ber_falls_with_snr() {
        let lo = MonteCarloBer::at_snr_db(4.0, BitsPerSecond::KBPS_100, 3000, 3)
            .run()
            .ber();
        let hi = MonteCarloBer::at_snr_db(12.0, BitsPerSecond::KBPS_100, 3000, 3)
            .run()
            .ber();
        assert!(hi < lo, "hi-SNR {hi} vs lo-SNR {lo}");
    }

    #[test]
    fn tracks_analytic_model_loosely() {
        // The real chain (suboptimal fixed slicer, ISI, hysteresis) should
        // land within an order of magnitude of the ideal noncoherent model
        // at moderate SNR.
        let snr_db = 10.0;
        let est = MonteCarloBer::at_snr_db(snr_db, BitsPerSecond::KBPS_100, 20_000, 4).run();
        let ideal = ber_ook_noncoherent(10f64.powf(snr_db / 10.0));
        let measured = est.ber().max(1.0 / est.bits as f64);
        let ratio = measured / ideal;
        assert!(
            (0.05..=50.0).contains(&ratio),
            "measured {measured:.3e} vs ideal {ideal:.3e}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MonteCarloBer::at_snr_db(6.0, BitsPerSecond::KBPS_100, 1000, 9).run();
        let b = MonteCarloBer::at_snr_db(6.0, BitsPerSecond::KBPS_100, 1000, 9).run();
        assert_eq!(a.errors, b.errors);
    }

    #[test]
    fn identical_at_any_thread_count() {
        // Spans three chunks (4096 + 4096 + 1808); counts must not depend
        // on how chunks land on threads.
        let mc = MonteCarloBer::at_snr_db(6.0, BitsPerSecond::KBPS_100, 10_000, 7);
        let serial = pool::with_threads(1, || mc.run());
        for n in [2usize, 4] {
            let par = pool::with_threads(n, || mc.run());
            assert_eq!(serial.errors, par.errors, "threads={n}");
            assert_eq!(serial.bits, par.bits, "threads={n}");
        }
    }

    #[test]
    fn chunk_performs_o1_heap_allocations() {
        // 1 kbps puts 20 000 samples in every bit — the regime where the
        // pre-fusion pipeline allocated five full-length stage vectors
        // (hundreds of MB per chunk). The fused loop must stay at O(1)
        // allocations (the bit vector) no matter how many samples it
        // touches.
        let mc = MonteCarloBer::at_snr_db(6.0, BitsPerSecond::new(1_000.0), 64, 3);
        assert_eq!(mc.samples_per_bit, 20_000);
        // Warm up any lazily initialized paths before counting.
        let _ = mc.run_chunk(4, chunk_seed(3, 0));
        let before = super::test_alloc::current();
        let est = mc.run_chunk(64, chunk_seed(3, 0));
        let allocations = super::test_alloc::current() - before;
        assert_eq!(est.bits, 64);
        assert!(
            allocations <= 8,
            "fused chunk should allocate O(1) times over 1.6M samples, did {allocations}"
        );
    }

    #[test]
    fn high_bitrate_suffers_isi_penalty() {
        // At 1 Mbps the detector dynamics eat into margin; at equal envelope
        // SNR the error rate should be no better than at 100 kbps.
        let slow = MonteCarloBer::at_snr_db(6.0, BitsPerSecond::KBPS_100, 4000, 5)
            .run()
            .ber();
        let fast = MonteCarloBer::at_snr_db(6.0, BitsPerSecond::MBPS_1, 4000, 5)
            .run()
            .ber();
        assert!(
            fast >= slow * 0.8,
            "1 Mbps ber {fast} should not beat 100 kbps ber {slow}"
        );
    }
}
