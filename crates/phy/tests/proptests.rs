//! Property-based tests for the physical layer.

use braidio_phy::ber::{
    ber_coherent, ber_ook_noncoherent, ber_ook_noncoherent_approx, packet_error_rate,
};
use braidio_phy::coding::{dc_balance, LineCode};
use braidio_phy::crc::{append_crc, crc16_ccitt, verify_with_trailer};
use braidio_phy::frame::{bits_to_bytes, bytes_to_bits, Frame};
use braidio_phy::modulation::OokModulator;
use braidio_phy::sync::BitSync;
use proptest::prelude::*;

proptest! {
    #[test]
    fn crc_detects_any_single_byte_change(data in proptest::collection::vec(any::<u8>(), 1..128),
                                          pos in 0usize..128, delta in 1u8..=255) {
        let framed = append_crc(&data);
        prop_assert!(verify_with_trailer(&framed));
        let mut corrupted = framed.clone();
        let idx = pos % corrupted.len();
        corrupted[idx] = corrupted[idx].wrapping_add(delta);
        prop_assert!(!verify_with_trailer(&corrupted) || corrupted == framed);
    }

    #[test]
    fn crc_is_a_function(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(crc16_ccitt(&data), crc16_ccitt(&data));
    }

    #[test]
    fn frame_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..255)) {
        let f = Frame::new(payload);
        let decoded = Frame::decode(&f.encode(), 0).unwrap();
        prop_assert_eq!(decoded, f);
    }

    #[test]
    fn frame_survives_leading_noise(payload in proptest::collection::vec(any::<u8>(), 1..32),
                                    noise in proptest::collection::vec(any::<bool>(), 0..64)) {
        let f = Frame::new(payload);
        // Leading garbage may accidentally contain a sync-like pattern that
        // triggers a (failing) decode attempt; we only require that when a
        // frame *is* decoded, it is the transmitted one, and that an
        // all-noise prefix of < sync length never hides the real frame.
        let mut bits = noise.clone();
        bits.extend(f.encode());
        match Frame::decode(&bits, 0) {
            Ok(decoded) => prop_assert_eq!(decoded, f),
            Err(_) => {
                // A spurious sync in the noise ate the stream — acceptable
                // only if the noise could alias the sync word.
                prop_assert!(noise.len() >= 8);
            }
        }
    }

    #[test]
    fn bits_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    #[test]
    fn line_codes_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..256)) {
        for code in [LineCode::Nrz, LineCode::Manchester, LineCode::Fm0] {
            let enc = code.encode(&bits);
            prop_assert_eq!(code.decode(&enc).unwrap(), bits.clone(), "{:?}", code);
        }
    }

    #[test]
    fn manchester_always_balanced(bits in proptest::collection::vec(any::<bool>(), 1..256)) {
        prop_assert_eq!(dc_balance(&LineCode::Manchester.encode(&bits)), 0.0);
    }

    #[test]
    fn fm0_balance_small(bits in proptest::collection::vec(any::<bool>(), 32..256)) {
        let bal = dc_balance(&LineCode::Fm0.encode(&bits));
        prop_assert!(bal.abs() <= 2.0 / bits.len() as f64 + 1e-12, "balance {bal}");
    }

    #[test]
    fn fm0_polarity_free(bits in proptest::collection::vec(any::<bool>(), 0..128)) {
        let enc = LineCode::Fm0.encode(&bits);
        let flipped: Vec<bool> = enc.iter().map(|&b| !b).collect();
        prop_assert_eq!(LineCode::Fm0.decode(&flipped).unwrap(), bits);
    }

    #[test]
    fn ber_models_are_probabilities(snr_db in -20.0f64..30.0) {
        let gamma = 10f64.powf(snr_db / 10.0);
        for ber in [
            ber_ook_noncoherent(gamma),
            ber_coherent(gamma),
            ber_ook_noncoherent_approx(gamma),
        ] {
            prop_assert!((0.0..=0.5 + 1e-12).contains(&ber), "snr {snr_db}: {ber}");
        }
    }

    #[test]
    fn noncoherent_never_beats_coherent(snr_db in -5.0f64..20.0) {
        let gamma = 10f64.powf(snr_db / 10.0);
        prop_assert!(ber_ook_noncoherent(gamma) >= ber_coherent(gamma) - 1e-12);
    }

    #[test]
    fn per_monotone_in_bits(ber in 1e-6f64..0.1, bits in 1usize..4096) {
        let p1 = packet_error_rate(ber, bits);
        let p2 = packet_error_rate(ber, bits + 1);
        prop_assert!(p2 >= p1);
        prop_assert!((0.0..=1.0).contains(&p1));
    }

    #[test]
    fn modulator_waveform_levels(bits in proptest::collection::vec(any::<bool>(), 1..64),
                                 high in 0.01f64..1.0, ratio in 0.0f64..0.9) {
        let m = OokModulator::new(8, high, high * ratio);
        let w = m.modulate(&bits);
        prop_assert_eq!(w.len(), bits.len() * 8);
        for (i, &b) in bits.iter().enumerate() {
            let expected = if b { m.high } else { m.low };
            prop_assert_eq!(w[i * 8 + 3], expected);
        }
    }

    #[test]
    fn bitsync_recovers_ideal_streams(bits in proptest::collection::vec(any::<bool>(), 8..128)) {
        let spb = 16usize;
        let samples: Vec<bool> = bits.iter().flat_map(|&b| std::iter::repeat_n(b, spb)).collect();
        let recovered = BitSync::new(spb).recover(&samples);
        prop_assert_eq!(recovered.len(), bits.len());
        prop_assert_eq!(recovered, bits);
    }

    /// `BerSurface::ber_batch` over an arbitrarily shuffled slice must be
    /// bitwise equal to element-wise `ber()` on a fresh surface of the same
    /// configuration — in the strict-memo config (canonical evaluation,
    /// exact memoization) *and* the interpolating config (which routes the
    /// batch through the scalar path wholesale). Duplicates and evaluation
    /// order must be invisible.
    #[test]
    fn ber_batch_matches_elementwise_on_shuffled_slices(
        snrs_db in proptest::collection::vec(-15.0f64..25.0, 1..48),
        seed in any::<u64>(),
        rel_tol in 0.0f64..0.1,
    ) {
        use braidio_phy::surface::{BerSurface, SurfaceConfig};
        use braidio_phy::ber::ber_ook_noncoherent;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // Shuffle (Fisher–Yates) and inject duplicates so batch dedup /
        // memo-ordering effects would show.
        let mut gammas: Vec<f64> = snrs_db.iter().map(|db| 10f64.powf(db / 10.0)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let dup = rng.random_range(0..gammas.len());
        gammas.push(gammas[dup]);
        for i in (1..gammas.len()).rev() {
            gammas.swap(i, rng.random_range(0..=i));
        }

        let configs = [SurfaceConfig::strict(), SurfaceConfig::interpolating(rel_tol.max(1e-6))];
        for config in configs {
            let batch_surface =
                BerSurface::new(Box::new(ber_ook_noncoherent), config);
            let scalar_surface =
                BerSurface::new(Box::new(ber_ook_noncoherent), config);
            let mut out = vec![0.0; gammas.len()];
            batch_surface.ber_batch(&gammas, &mut out);
            for (i, (&g, &b)) in gammas.iter().zip(&out).enumerate() {
                prop_assert_eq!(
                    b.to_bits(),
                    scalar_surface.ber(g).to_bits(),
                    "index {} gamma {}", i, g
                );
            }
            // A warm re-batch (all memo hits in the strict config) must
            // reproduce the same bits again.
            let mut warm = vec![0.0; gammas.len()];
            batch_surface.ber_batch(&gammas, &mut warm);
            for (a, b) in out.iter().zip(&warm) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// The fused Monte-Carlo chunk (interleaved modulate → corrupt →
    /// demodulate, only decisions retained) must count exactly the same
    /// errors as the materialized reference (waveform vector, noise pass,
    /// full demodulation, then decision sampling), for arbitrary SNR,
    /// chunk sizes, resolutions, rates and seeds.
    #[test]
    fn fused_chunk_matches_materialized_reference(
        snr_db in 2.0f64..16.0,
        nbits in 8usize..160,
        seed in any::<u64>(),
        spb in 10usize..60,
        rate_sel in 0usize..3,
    ) {
        use braidio_phy::montecarlo::MonteCarloBer;
        use braidio_units::BitsPerSecond;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let rate = [
            BitsPerSecond::KBPS_10,
            BitsPerSecond::KBPS_100,
            BitsPerSecond::MBPS_1,
        ][rate_sel];
        let mut mc = MonteCarloBer::at_snr_db(snr_db, rate, nbits, seed);
        // Shrink the per-bit resolution to keep the case fast; the
        // arithmetic under test is resolution-independent.
        mc.samples_per_bit = spb;
        let fused = mc.run_chunk(nbits, seed);

        // Materialized reference: the pre-fusion pipeline shape.
        let mut rng = StdRng::seed_from_u64(seed);
        let training = 16usize;
        let mut bits: Vec<bool> = Vec::with_capacity(training + nbits);
        for i in 0..training {
            bits.push(i % 2 == 0);
        }
        for _ in 0..nbits {
            bits.push(rng.random_bool(0.5));
        }
        let modulator = OokModulator::new(mc.samples_per_bit, mc.envelope_high, mc.envelope_low);
        let mut envelope = modulator.modulate(&bits);
        for s in envelope.iter_mut() {
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
            *s = (*s + mc.noise_rms * z).max(0.0);
        }
        let sliced = mc.chain.demodulate(&envelope, modulator.sample_interval(mc.rate));
        let mut errors = 0usize;
        for (i, &bit) in bits.iter().enumerate().skip(training) {
            if sliced[modulator.decision_index(i)] != bit {
                errors += 1;
            }
        }
        prop_assert_eq!(fused.bits, nbits);
        prop_assert_eq!(fused.errors, errors);
    }
}
