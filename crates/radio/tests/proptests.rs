//! Property-based tests for the radio characterization layer.

use braidio_radio::battery::Battery;
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::Mode;
use braidio_units::{Joules, Meters, Seconds, Watts};
use proptest::prelude::*;

fn ch() -> Characterization {
    Characterization::braidio()
}

proptest! {
    #[test]
    fn battery_never_negative(capacity in 0.01f64..100.0,
                              draws in proptest::collection::vec(0.0f64..1000.0, 1..50)) {
        let mut b = Battery::from_watt_hours(capacity);
        for d in draws {
            b.draw(Joules::new(d));
            prop_assert!(b.remaining().joules() >= 0.0);
            prop_assert!((0.0..=1.0).contains(&b.soc()));
        }
    }

    #[test]
    fn battery_lifetime_consistent(capacity in 0.01f64..10.0, mw in 0.1f64..500.0) {
        let b = Battery::from_watt_hours(capacity);
        let p = Watts::from_milliwatts(mw);
        let life = b.lifetime_at(p);
        let mut drained = b;
        drained.draw_power(p, life);
        prop_assert!(drained.remaining().joules() < 1e-6 * b.capacity().joules() + 1e-9);
        let _ = Seconds::ZERO;
    }

    #[test]
    fn snr_decreases_with_distance(d in 0.1f64..6.0, delta in 0.05f64..2.0) {
        let c = ch();
        for mode in [Mode::Passive, Mode::Backscatter] {
            let s1 = c.snr(mode, Rate::Kbps100, Meters::new(d));
            let s2 = c.snr(mode, Rate::Kbps100, Meters::new(d + delta));
            prop_assert!(s2 <= s1);
        }
    }

    #[test]
    fn received_power_mode_ordering(d in 0.1f64..8.0) {
        // At equal source powers the two-way link is always weaker; the
        // carrier modes start 13 dB hotter yet backscatter still loses to
        // passive everywhere.
        let c = ch();
        let dist = Meters::new(d);
        prop_assert!(c.received_power(Mode::Passive, dist) > c.received_power(Mode::Backscatter, dist));
    }

    #[test]
    fn max_rate_consistent_with_available(d in 0.1f64..8.0) {
        let c = ch();
        let dist = Meters::new(d);
        for mode in Mode::ALL {
            if let Some(rate) = c.max_rate(mode, dist) {
                prop_assert!(c.available(mode, rate, dist));
            } else {
                for rate in Rate::ALL {
                    if c.power(mode, rate).is_some() {
                        prop_assert!(!c.available(mode, rate, dist));
                    }
                }
            }
        }
    }

    #[test]
    fn energy_per_bit_positive_and_consistent(_x in 0..1i32) {
        let c = ch();
        for p in c.power_table() {
            let t = p.tx_energy_per_bit();
            let r = p.rx_energy_per_bit();
            prop_assert!(t.joules_per_bit() > 0.0 && r.joules_per_bit() > 0.0);
            // Power ratio equals energy-per-bit ratio (same rate).
            prop_assert!((p.power_ratio() - t / r).abs() < 1e-9 * p.power_ratio());
        }
    }
}
