//! The three Braidio operating modes (§4).
//!
//! The paper names modes after the *receiver's* state:
//!
//! * **Active** — both ends run carriers (Fig. 2a);
//! * **Passive** — only the transmitter has a carrier, the receiver uses
//!   the envelope detector (Fig. 2b);
//! * **Backscatter** — only the receiver has a carrier, the transmitter is
//!   a backscatter tag (Fig. 2c).

use braidio_rfsim::LinkKind;
use core::fmt;

/// A Braidio operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// Both endpoints generate the carrier.
    Active,
    /// Only the data transmitter generates the carrier; the receiver is a
    /// passive envelope detector.
    Passive,
    /// Only the data receiver generates the carrier; the transmitter
    /// backscatters it.
    Backscatter,
}

impl Mode {
    /// All modes in the paper's A/B/C order.
    pub const ALL: [Mode; 3] = [Mode::Active, Mode::Passive, Mode::Backscatter];

    /// The propagation view of this mode.
    pub fn link_kind(self) -> LinkKind {
        match self {
            Mode::Active => LinkKind::Active,
            Mode::Passive => LinkKind::PassiveRx,
            Mode::Backscatter => LinkKind::Backscatter,
        }
    }

    /// Which endpoint(s) must run a carrier in this mode.
    pub fn carrier_at(self) -> (bool, bool) {
        let k = self.link_kind();
        (k.transmitter_has_carrier(), k.receiver_has_carrier())
    }

    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Active => "Active",
            Mode::Passive => "Passive",
            Mode::Backscatter => "Backscatter",
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl From<Mode> for braidio_telemetry::ModeTag {
    fn from(m: Mode) -> Self {
        match m {
            Mode::Active => braidio_telemetry::ModeTag::Active,
            Mode::Passive => braidio_telemetry::ModeTag::Passive,
            Mode::Backscatter => braidio_telemetry::ModeTag::Backscatter,
        }
    }
}

/// Which side of a link a device currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Data transmitter.
    Transmitter,
    /// Data receiver.
    Receiver,
}

impl Role {
    /// The opposite role.
    pub fn other(self) -> Role {
        match self {
            Role::Transmitter => Role::Receiver,
            Role::Receiver => Role::Transmitter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carrier_placement_matches_fig2() {
        assert_eq!(Mode::Active.carrier_at(), (true, true));
        assert_eq!(Mode::Passive.carrier_at(), (true, false));
        assert_eq!(Mode::Backscatter.carrier_at(), (false, true));
    }

    #[test]
    fn link_kind_mapping() {
        assert_eq!(Mode::Passive.link_kind(), LinkKind::PassiveRx);
        assert_eq!(Mode::Backscatter.link_kind(), LinkKind::Backscatter);
    }

    #[test]
    fn role_other_is_involutive() {
        assert_eq!(Role::Transmitter.other().other(), Role::Transmitter);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Mode::Backscatter.to_string(), "Backscatter");
    }
}
