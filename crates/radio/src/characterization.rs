//! The empirical characterization driving every evaluation experiment.
//!
//! §6.3: "we design a simulator that simulates link behavior based on the
//! above described experimental characterization". This module *is* that
//! characterization, regenerated from models instead of a testbed:
//!
//! * the per-(mode, bitrate) TX/RX power table whose ratios are the corner
//!   labels of Figs. 9 and 14 (1:2546 … 7800:1);
//! * detector noise floors calibrated so the BER = 1e-2 crossings land at
//!   the paper's measured ranges (Fig. 13: 0.9/1.8/2.4 m backscatter,
//!   3.9/4.2/5.1 m passive);
//! * BER-vs-distance and mode-availability queries built on
//!   `braidio-rfsim` link budgets and `braidio-phy` detection statistics.

use crate::mode::Mode;
use braidio_phy::ber::{ber_ook_noncoherent, snr_for_ber};
use braidio_phy::surface::{self, BerModel};
use braidio_rfsim::noise::CoherentReceiverNoise;
use braidio_rfsim::LinkBudget;
use braidio_units::{BitsPerSecond, Decibels, Hertz, JoulesPerBit, Meters, Watts};
use std::sync::OnceLock;

/// The three canonical Braidio bitrates, as a hashable enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rate {
    /// 10 kbps.
    Kbps10,
    /// 100 kbps.
    Kbps100,
    /// 1 Mbps.
    Mbps1,
}

impl Rate {
    /// All rates, slowest first.
    pub const ALL: [Rate; 3] = [Rate::Kbps10, Rate::Kbps100, Rate::Mbps1];

    /// The corresponding typed bitrate.
    pub fn bps(self) -> BitsPerSecond {
        match self {
            Rate::Kbps10 => BitsPerSecond::KBPS_10,
            Rate::Kbps100 => BitsPerSecond::KBPS_100,
            Rate::Mbps1 => BitsPerSecond::MBPS_1,
        }
    }

    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Rate::Kbps10 => "10k",
            Rate::Kbps100 => "100k",
            Rate::Mbps1 => "1M",
        }
    }
}

impl From<Rate> for braidio_telemetry::RateTag {
    fn from(r: Rate) -> Self {
        match r {
            Rate::Kbps10 => braidio_telemetry::RateTag::Kbps10,
            Rate::Kbps100 => braidio_telemetry::RateTag::Kbps100,
            Rate::Mbps1 => braidio_telemetry::RateTag::Mbps1,
        }
    }
}

/// One row of the power table: what each side draws while moving data in a
/// given mode at a given bitrate.
#[derive(Debug, Clone, Copy)]
pub struct PowerPoint {
    /// Operating mode.
    pub mode: Mode,
    /// Bitrate.
    pub rate: Rate,
    /// Data-transmitter power draw.
    pub tx: Watts,
    /// Data-receiver power draw.
    pub rx: Watts,
}

impl PowerPoint {
    /// Transmit-side energy per bit (`Tᵢ` in Eq. 1).
    pub fn tx_energy_per_bit(&self) -> JoulesPerBit {
        self.tx / self.rate.bps()
    }

    /// Receive-side energy per bit (`Rᵢ` in Eq. 1).
    pub fn rx_energy_per_bit(&self) -> JoulesPerBit {
        self.rx / self.rate.bps()
    }

    /// The TX:RX power ratio (the corner labels of Figs. 9/14).
    pub fn power_ratio(&self) -> f64 {
        self.tx / self.rx
    }
}

/// The BER threshold the paper uses to call a link "operational"
/// (Fig. 13: "for BER < 0.01").
pub const OPERATIONAL_BER: f64 = 1e-2;

/// The full Braidio characterization.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// RF link parameters shared by all modes.
    pub budget: LinkBudget,
    /// RF carrier power (SI4432 at 13 dBm).
    pub carrier_rf: Watts,
    /// Active radio RF output (BLE-class, 0 dBm).
    pub active_rf: Watts,
    /// Power table (7 rows: active@1M, passive×3, backscatter×3).
    points: Vec<PowerPoint>,
    /// Calibrated detector noise-equivalent power per (mode, rate).
    noise: Vec<((Mode, Rate), Watts)>,
    /// Active receiver noise model.
    active_noise: Watts,
    /// SNR (linear) at which noncoherent OOK hits [`OPERATIONAL_BER`].
    gamma_star: f64,
    /// Tables derived from the fields above, rebuilt whenever they change.
    derived: Derived,
}

/// Per-(mode, rate) lookup tables precomputed at construction so the hot
/// query paths (`power`, `detector_noise`, `energy_per_bit`, `range`) are
/// plain array indexing instead of scans or bisections. Indexed
/// `[mode_ix][rate_ix]`.
#[derive(Debug, Clone, Default)]
struct Derived {
    power: [[Option<PowerPoint>; 3]; 3],
    noise: [[Option<Watts>; 3]; 3],
    per_bit: [[Option<(JoulesPerBit, JoulesPerBit)>; 3]; 3],
    range: [[Option<Meters>; 3]; 3],
}

fn mode_ix(mode: Mode) -> usize {
    match mode {
        Mode::Active => 0,
        Mode::Passive => 1,
        Mode::Backscatter => 2,
    }
}

fn rate_ix(rate: Rate) -> usize {
    match rate {
        Rate::Kbps10 => 0,
        Rate::Kbps100 => 1,
        Rate::Mbps1 => 2,
    }
}

/// The measured BER = 1e-2 range anchors (Fig. 13).
fn range_anchor(mode: Mode, rate: Rate) -> Option<Meters> {
    let m = match (mode, rate) {
        (Mode::Backscatter, Rate::Mbps1) => 0.9,
        (Mode::Backscatter, Rate::Kbps100) => 1.8,
        (Mode::Backscatter, Rate::Kbps10) => 2.4,
        (Mode::Passive, Rate::Mbps1) => 3.9,
        (Mode::Passive, Rate::Kbps100) => 4.2,
        (Mode::Passive, Rate::Kbps10) => 5.1,
        (Mode::Active, _) => return None,
    };
    Some(Meters::new(m))
}

impl Characterization {
    /// The Braidio board as characterized in §6 (see DESIGN.md §3 for the
    /// full provenance of every constant).
    ///
    /// The characterization is a pure constant, but building it involves
    /// Marcum-Q bisections and range calibration, so it is constructed once
    /// per process and cheaply cloned out of a static cache.
    pub fn braidio() -> Self {
        static BRAIDIO: OnceLock<Characterization> = OnceLock::new();
        BRAIDIO.get_or_init(Self::build_braidio).clone()
    }

    fn build_braidio() -> Self {
        use Mode::*;
        use Rate::*;
        let points = vec![
            // Active: the SPBT2632C2 module (Table 4) at 1 Mbps, module-level
            // draw. The 0.9524:1 TX:RX ratio is Fig. 9's label for point A;
            // the absolute level is calibrated so that (a) point A lies
            // *inside* triangle ABC (the paper's "optimal operating points
            // lie on line BC" geometry) and (b) the equal-battery Braidio
            // gain over Bluetooth is the 1.43x of Fig. 15's diagonal.
            PowerPoint {
                mode: Active,
                rate: Mbps1,
                tx: Watts::from_milliwatts(86.49),
                rx: Watts::from_milliwatts(90.81),
            },
            // Passive receiver mode: TX runs the SI4432 carrier (125 mW);
            // RX is the envelope-detector chain plus decode share.
            PowerPoint {
                mode: Passive,
                rate: Mbps1,
                tx: Watts::from_milliwatts(125.0),
                rx: Watts::from_microwatts(49.10),
            },
            PowerPoint {
                mode: Passive,
                rate: Kbps100,
                tx: Watts::from_milliwatts(125.0),
                rx: Watts::from_microwatts(31.25),
            },
            PowerPoint {
                mode: Passive,
                rate: Kbps10,
                tx: Watts::from_milliwatts(125.0),
                rx: Watts::from_microwatts(22.32),
            },
            // Backscatter mode: RX runs the carrier + amp + decode
            // (129 mW); TX is the switch-toggling tag.
            PowerPoint {
                mode: Backscatter,
                rate: Mbps1,
                tx: Watts::from_microwatts(36.38),
                rx: Watts::from_milliwatts(129.0),
            },
            PowerPoint {
                mode: Backscatter,
                rate: Kbps100,
                tx: Watts::from_microwatts(23.15),
                rx: Watts::from_milliwatts(129.0),
            },
            PowerPoint {
                mode: Backscatter,
                rate: Kbps10,
                tx: Watts::from_microwatts(16.54),
                rx: Watts::from_milliwatts(129.0),
            },
        ];

        let budget = LinkBudget::default();
        let carrier_rf = Watts::from_dbm(13.0);
        let active_rf = Watts::from_dbm(0.0);
        // The operational-threshold SNR is a pure constant of the detection
        // statistics; computing it involves a bisection over Marcum-Q
        // evaluations, so cache it process-wide.
        static GAMMA_STAR: OnceLock<f64> = OnceLock::new();
        let gamma_star =
            *GAMMA_STAR.get_or_init(|| snr_for_ber(ber_ook_noncoherent, OPERATIONAL_BER, 0.1, 1e4));

        // Calibrate the detector noise floor per (mode, rate) so that the
        // link hits OPERATIONAL_BER exactly at the measured anchor range.
        let mut noise = Vec::new();
        for mode in [Mode::Passive, Mode::Backscatter] {
            for rate in Rate::ALL {
                let anchor = range_anchor(mode, rate).expect("anchored");
                let rx = budget.received_power(mode.link_kind(), carrier_rf, anchor);
                noise.push(((mode, rate), rx / gamma_star));
            }
        }

        // Active receiver: thermal noise + 10 dB NF in a 1 MHz bandwidth.
        let active_noise = CoherentReceiverNoise {
            noise_figure: Decibels::new(10.0),
            bandwidth: Hertz::from_mhz(1.0),
        }
        .power();

        let mut c = Characterization {
            budget,
            carrier_rf,
            active_rf,
            points,
            noise,
            active_noise,
            gamma_star,
            derived: Derived::default(),
        };
        c.rebuild_derived();
        c
    }

    /// Rebuild the precomputed lookup tables from the current power table,
    /// noise calibration and link budget. Must be called after any field
    /// mutation (see [`Characterization::with_carrier_dbm`]).
    fn rebuild_derived(&mut self) {
        let mut d = Derived::default();
        for p in &self.points {
            let (mi, ri) = (mode_ix(p.mode), rate_ix(p.rate));
            d.power[mi][ri] = Some(*p);
            d.per_bit[mi][ri] = Some((p.tx_energy_per_bit(), p.rx_energy_per_bit()));
        }
        for &((mode, rate), n) in &self.noise {
            d.noise[mode_ix(mode)][rate_ix(rate)] = Some(n);
        }
        // Install power/noise first: the range bisection queries them
        // through `ber`.
        self.derived = d;
        for mode in Mode::ALL {
            for rate in Rate::ALL {
                let r = self.range_by_bisection(mode, rate);
                self.derived.range[mode_ix(mode)][rate_ix(rate)] = r;
            }
        }
    }

    /// A variant board with a different carrier output power.
    ///
    /// The detector noise floors are hardware constants (they do not move
    /// with the carrier), so ranges shrink or grow per the link budget; the
    /// carrier-dependent rows of the power table are re-derived from the
    /// SI4432 draw curve. This is the entry point for "what if the carrier
    /// ran at X dBm" studies.
    pub fn with_carrier_dbm(mut self, dbm: f64) -> Self {
        let emitter = braidio_circuits::carrier::CarrierEmitter::si4432();
        let old_draw = emitter.draw_at(self.carrier_rf);
        let new_draw = emitter.draw_at_dbm(dbm);
        self.carrier_rf = Watts::from_dbm(dbm);
        for p in self.points.iter_mut() {
            match p.mode {
                // Passive TX and backscatter RX own the carrier: swap the
                // emitter's share of their draw.
                Mode::Passive => p.tx = p.tx - old_draw + new_draw,
                Mode::Backscatter => p.rx = p.rx - old_draw + new_draw,
                Mode::Active => {}
            }
        }
        self.rebuild_derived();
        self
    }

    /// The power-table row for a mode/rate, if that combination exists
    /// (the active radio only runs at 1 Mbps).
    pub fn power(&self, mode: Mode, rate: Rate) -> Option<PowerPoint> {
        self.derived.power[mode_ix(mode)][rate_ix(rate)]
    }

    /// Precomputed per-bit costs `(Tᵢ, Rᵢ)` for a mode/rate, if it exists.
    pub fn energy_per_bit(&self, mode: Mode, rate: Rate) -> Option<(JoulesPerBit, JoulesPerBit)> {
        self.derived.per_bit[mode_ix(mode)][rate_ix(rate)]
    }

    /// All power-table rows.
    pub fn power_table(&self) -> &[PowerPoint] {
        &self.points
    }

    /// The calibrated SNR (linear) for the operational-BER threshold.
    pub fn gamma_star(&self) -> f64 {
        self.gamma_star
    }

    /// Detector noise-equivalent power for a detector-based mode.
    pub fn detector_noise(&self, mode: Mode, rate: Rate) -> Option<Watts> {
        self.derived.noise[mode_ix(mode)][rate_ix(rate)]
    }

    /// Received signal power at the data receiver for a mode at distance
    /// `d`.
    pub fn received_power(&self, mode: Mode, d: Meters) -> Watts {
        let source = match mode {
            Mode::Active => self.active_rf,
            Mode::Passive | Mode::Backscatter => self.carrier_rf,
        };
        self.budget.received_power(mode.link_kind(), source, d)
    }

    /// SNR at the data receiver, dB.
    pub fn snr(&self, mode: Mode, rate: Rate, d: Meters) -> Decibels {
        let rx = self.received_power(mode, d);
        let noise = match mode {
            Mode::Active => self.active_noise,
            _ => self.detector_noise(mode, rate).expect("calibrated"),
        };
        rx.ratio_db(noise)
    }

    /// Bit error rate of a mode/rate at distance `d`.
    ///
    /// Answered by the process-shared strict [`BerSurface`] for the mode's
    /// detection model, so the range bisections, the figure sweeps and the
    /// MAC epoch loop each solve a given SNR point once per process. A
    /// strict surface memoizes exact closed-form solves, so values are
    /// bit-identical to calling the closed forms directly.
    ///
    /// [`BerSurface`]: braidio_phy::surface::BerSurface
    pub fn ber(&self, mode: Mode, rate: Rate, d: Meters) -> f64 {
        if self.power(mode, rate).is_none() {
            return 0.5;
        }
        let gamma = self.snr(mode, rate, d).linear();
        let model = match mode {
            Mode::Active => BerModel::CoherentFsk,
            Mode::Passive | Mode::Backscatter => BerModel::NoncoherentOok,
        };
        surface::shared(model, rate.bps()).ber(gamma)
    }

    /// Is this mode/rate operational (BER below threshold) at `d`?
    pub fn available(&self, mode: Mode, rate: Rate, d: Meters) -> bool {
        self.ber(mode, rate, d) <= OPERATIONAL_BER
    }

    /// The fastest operational rate for a mode at `d`, if any.
    pub fn max_rate(&self, mode: Mode, d: Meters) -> Option<Rate> {
        Rate::ALL
            .into_iter()
            .rev()
            .find(|&r| self.power(mode, r).is_some() && self.available(mode, r, d))
    }

    /// The operational range (BER = threshold crossing) of a mode/rate.
    ///
    /// Precomputed at construction; this is a table lookup.
    pub fn range(&self, mode: Mode, rate: Rate) -> Option<Meters> {
        self.derived.range[mode_ix(mode)][rate_ix(rate)]
    }

    /// The bisection behind [`Characterization::range`], run once per
    /// (mode, rate) when the derived tables are rebuilt.
    fn range_by_bisection(&self, mode: Mode, rate: Rate) -> Option<Meters> {
        self.power(mode, rate)?;
        if self.ber(mode, rate, Meters::new(0.05)) > OPERATIONAL_BER {
            return None;
        }
        let (mut lo, mut hi) = (0.05f64, 500.0f64);
        if self.ber(mode, rate, Meters::new(hi)) <= OPERATIONAL_BER {
            return Some(Meters::new(hi));
        }
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if self.ber(mode, rate, Meters::new(mid)) <= OPERATIONAL_BER {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Meters::new(0.5 * (lo + hi)))
    }
}

impl Default for Characterization {
    fn default() -> Self {
        Characterization::braidio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Characterization {
        Characterization::braidio()
    }

    #[test]
    fn surface_backed_ber_matches_closed_forms_bitwise() {
        // `ber` routes through the shared strict surface; strict mode must
        // return exactly what the closed forms return, at every queried
        // distance, for every mode.
        use braidio_phy::ber::{ber_coherent, ber_ook_noncoherent_fast};
        let c = ch();
        for i in 1..=40 {
            let d = Meters::new(0.25 * i as f64);
            for mode in [Mode::Active, Mode::Passive, Mode::Backscatter] {
                for rate in Rate::ALL {
                    if c.power(mode, rate).is_none() {
                        continue;
                    }
                    let gamma = c.snr(mode, rate, d).linear();
                    let direct = match mode {
                        Mode::Active => ber_coherent(gamma),
                        _ => ber_ook_noncoherent_fast(gamma),
                    };
                    assert_eq!(
                        c.ber(mode, rate, d).to_bits(),
                        direct.to_bits(),
                        "{mode} {} at {d}",
                        rate.label()
                    );
                }
            }
        }
    }

    #[test]
    fn power_ratios_match_fig14_labels() {
        let c = ch();
        let cases = [
            (Mode::Active, Rate::Mbps1, 0.9524),
            (Mode::Passive, Rate::Mbps1, 2546.0),
            (Mode::Passive, Rate::Kbps100, 4000.0),
            (Mode::Passive, Rate::Kbps10, 5600.0),
            (Mode::Backscatter, Rate::Mbps1, 1.0 / 3546.0),
            (Mode::Backscatter, Rate::Kbps100, 1.0 / 5571.0),
            (Mode::Backscatter, Rate::Kbps10, 1.0 / 7800.0),
        ];
        for (mode, rate, expected) in cases {
            let r = c.power(mode, rate).unwrap().power_ratio();
            assert!(
                (r / expected - 1.0).abs() < 0.01,
                "{mode} {}: ratio {r} vs {expected}",
                rate.label()
            );
        }
    }

    #[test]
    fn power_range_spans_paper_envelope() {
        // "consumes between 16uW – 129mW across the different modes".
        let c = ch();
        let mut min = Watts::new(f64::MAX);
        let mut max = Watts::ZERO;
        for p in c.power_table() {
            min = min.min(p.tx).min(p.rx);
            max = max.max(p.tx).max(p.rx);
        }
        assert!((min.microwatts() - 16.54).abs() < 0.01, "min {min}");
        assert!((max.milliwatts() - 129.0).abs() < 0.01, "max {max}");
    }

    #[test]
    fn ranges_hit_the_fig13_anchors() {
        let c = ch();
        let cases = [
            (Mode::Backscatter, Rate::Mbps1, 0.9),
            (Mode::Backscatter, Rate::Kbps100, 1.8),
            (Mode::Backscatter, Rate::Kbps10, 2.4),
            (Mode::Passive, Rate::Mbps1, 3.9),
            (Mode::Passive, Rate::Kbps100, 4.2),
            (Mode::Passive, Rate::Kbps10, 5.1),
        ];
        for (mode, rate, expect) in cases {
            let r = c.range(mode, rate).unwrap();
            assert!(
                (r.meters() - expect).abs() < 0.02,
                "{mode} {} range {r} vs {expect} m",
                rate.label()
            );
        }
    }

    #[test]
    fn active_mode_works_well_beyond_6m() {
        let c = ch();
        assert!(c.available(Mode::Active, Rate::Mbps1, Meters::new(6.0)));
        assert!(c.range(Mode::Active, Rate::Mbps1).unwrap() > Meters::new(20.0));
    }

    #[test]
    fn ber_monotone_in_distance() {
        let c = ch();
        for mode in [Mode::Passive, Mode::Backscatter] {
            let mut prev = 0.0;
            for d in [0.3, 0.9, 1.5, 2.4, 4.0, 6.0] {
                let b = c.ber(mode, Rate::Kbps100, Meters::new(d));
                assert!(b >= prev - 1e-12, "{mode} at {d} m");
                prev = b;
            }
        }
    }

    #[test]
    fn max_rate_degrades_with_distance() {
        let c = ch();
        // Backscatter: 1M -> 100k -> 10k -> unavailable (Fig. 14's story).
        assert_eq!(
            c.max_rate(Mode::Backscatter, Meters::new(0.3)),
            Some(Rate::Mbps1)
        );
        assert_eq!(
            c.max_rate(Mode::Backscatter, Meters::new(1.2)),
            Some(Rate::Kbps100)
        );
        assert_eq!(
            c.max_rate(Mode::Backscatter, Meters::new(2.0)),
            Some(Rate::Kbps10)
        );
        assert_eq!(c.max_rate(Mode::Backscatter, Meters::new(3.0)), None);
        // Passive holds on much longer.
        assert_eq!(
            c.max_rate(Mode::Passive, Meters::new(3.0)),
            Some(Rate::Mbps1)
        );
        assert_eq!(c.max_rate(Mode::Passive, Meters::new(5.5)), None);
    }

    #[test]
    fn active_only_at_1mbps() {
        let c = ch();
        assert!(c.power(Mode::Active, Rate::Mbps1).is_some());
        assert!(c.power(Mode::Active, Rate::Kbps100).is_none());
        assert!(c.range(Mode::Active, Rate::Kbps10).is_none());
    }

    #[test]
    fn energy_per_bit_math() {
        let c = ch();
        let p = c.power(Mode::Passive, Rate::Mbps1).unwrap();
        assert!((p.tx_energy_per_bit().nanojoules_per_bit() - 125.0).abs() < 1e-9);
        assert!((p.rx_energy_per_bit().nanojoules_per_bit() - 0.0491).abs() < 1e-6);
    }

    #[test]
    fn snr_at_anchor_equals_gamma_star() {
        let c = ch();
        let snr = c.snr(Mode::Backscatter, Rate::Kbps100, Meters::new(1.8));
        assert!(
            (snr.linear() / c.gamma_star() - 1.0).abs() < 1e-6,
            "calibration broken: {snr}"
        );
    }

    #[test]
    fn carrier_variant_at_13dbm_is_identity() {
        let base = ch();
        let same = ch().with_carrier_dbm(13.0);
        for (a, b) in base.power_table().iter().zip(same.power_table()) {
            assert!((a.tx.watts() - b.tx.watts()).abs() < 1e-12);
            assert!((a.rx.watts() - b.rx.watts()).abs() < 1e-12);
        }
        assert_eq!(
            base.range(Mode::Backscatter, Rate::Kbps100)
                .unwrap()
                .meters(),
            same.range(Mode::Backscatter, Rate::Kbps100)
                .unwrap()
                .meters()
        );
    }

    #[test]
    fn quieter_carrier_shrinks_range_and_saves_power() {
        let base = ch();
        let quiet = ch().with_carrier_dbm(7.0);
        let r_base = base.range(Mode::Backscatter, Rate::Kbps100).unwrap();
        let r_quiet = quiet.range(Mode::Backscatter, Rate::Kbps100).unwrap();
        assert!(r_quiet < r_base, "{r_quiet} vs {r_base}");
        let p_base = base.power(Mode::Passive, Rate::Mbps1).unwrap().tx;
        let p_quiet = quiet.power(Mode::Passive, Rate::Mbps1).unwrap().tx;
        assert!(
            (p_base - p_quiet).milliwatts() > 50.0,
            "6 dB back-off should save > 50 mW of PA drain"
        );
        // Backscatter tag TX (no carrier) is untouched.
        assert_eq!(
            base.power(Mode::Backscatter, Rate::Mbps1).unwrap().tx,
            quiet.power(Mode::Backscatter, Rate::Mbps1).unwrap().tx
        );
    }

    #[test]
    fn louder_carrier_extends_backscatter_range() {
        let loud = ch().with_carrier_dbm(17.0);
        let r = loud.range(Mode::Backscatter, Rate::Kbps100).unwrap();
        assert!(r > Meters::new(2.0), "17 dBm range {r}");
    }

    #[test]
    fn derived_tables_match_their_sources() {
        let c = ch();
        for mode in Mode::ALL {
            for rate in Rate::ALL {
                match c.power(mode, rate) {
                    Some(p) => {
                        let (t, r) = c.energy_per_bit(mode, rate).expect("row exists");
                        assert_eq!(t.joules_per_bit(), p.tx_energy_per_bit().joules_per_bit());
                        assert_eq!(r.joules_per_bit(), p.rx_energy_per_bit().joules_per_bit());
                    }
                    None => assert!(c.energy_per_bit(mode, rate).is_none()),
                }
                assert_eq!(
                    c.range(mode, rate).map(|m| m.meters()),
                    c.range_by_bisection(mode, rate).map(|m| m.meters()),
                    "{mode} {}",
                    rate.label()
                );
            }
        }
    }

    #[test]
    fn gamma_star_in_expected_window() {
        let c = ch();
        let db = 10.0 * c.gamma_star().log10();
        assert!((8.0..=11.5).contains(&db), "gamma* {db} dB");
    }
}
