//! The Braidio hardware lineage (§5) and the reader-technique comparison
//! (Table 3).
//!
//! The design went through three iterations, each attacking the
//! backscatter-receiver power problem differently; the final version is the
//! one the whole characterization describes. Keeping the lineage as data
//! lets the ablation experiments show *why* each technique was abandoned.

use braidio_units::Watts;

/// One hardware iteration of Braidio.
#[derive(Debug, Clone, Copy)]
pub struct HardwareVersion {
    /// Version number (1-based).
    pub version: u8,
    /// Reader-side (backscatter-mode receiver) approach.
    pub approach: &'static str,
    /// Measured/derived reader-side power while receiving backscatter.
    pub reader_power: Watts,
    /// Why it was (or was not) kept.
    pub verdict: &'static str,
}

/// The three §5 iterations.
pub fn lineage() -> [HardwareVersion; 3] {
    [
        HardwareVersion {
            version: 1,
            approach: "off-the-shelf: CC2541 BLE + AS3993 reader IC + Moo tag",
            reader_power: Watts::new(0.64),
            verdict: "highly unsatisfactory from a power perspective",
        },
        HardwareVersion {
            version: 2,
            approach: "directional coupler isolation + Zero-IF direct conversion",
            reader_power: Watts::from_milliwatts(240.0),
            verdict: "reader alone combined more than 240 mW",
        },
        HardwareVersion {
            version: 3,
            approach: "passive charge-pump detector + high-pass SI rejection + antenna diversity",
            reader_power: Watts::from_milliwatts(129.0),
            verdict: "final design: tag-like parts, 129 mW including the carrier",
        },
    ]
}

/// One row of Table 3: how a commercial reader and Braidio solve the same
/// problem.
#[derive(Debug, Clone, Copy)]
pub struct TechniqueRow {
    /// The problem being solved.
    pub problem: &'static str,
    /// The commercial reader's technique and its cost.
    pub commercial: &'static str,
    /// Braidio's technique and its trade.
    pub braidio: &'static str,
}

/// Table 3: commercial reader vs Braidio, technique by technique.
pub fn table3() -> [TechniqueRow; 3] {
    [
        TechniqueRow {
            problem: "Phase cancellation",
            commercial: "IQ-based orthogonal receiver — robust, but two mixer/filter/IF chains at high power",
            braidio: "two spatially separated antennas — passive, low power; cannot eliminate every null",
        },
        TechniqueRow {
            problem: "Signal amplification",
            commercial: "RF LNA + IF amplifier + DSP — better sensitivity at high power",
            braidio: "charge pump boost + baseband instrumentation amplifier — lower power, lower sensitivity",
        },
        TechniqueRow {
            problem: "Frequency selection",
            commercial: "mixer + low-pass filter — good selectivity at high power",
            braidio: "passive SAW filter — zero power; in-band interference still gets through",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_strictly_improves_across_versions() {
        let l = lineage();
        assert!(l[0].reader_power > l[1].reader_power);
        assert!(l[1].reader_power > l[2].reader_power);
    }

    #[test]
    fn final_version_matches_characterization() {
        let v3 = lineage()[2];
        assert_eq!(v3.reader_power, Watts::from_milliwatts(129.0));
    }

    #[test]
    fn v1_is_the_as3993_power() {
        assert_eq!(lineage()[0].reader_power, Watts::new(0.64));
    }

    #[test]
    fn table3_covers_three_problems() {
        let t = table3();
        assert_eq!(t.len(), 3);
        assert!(t.iter().any(|r| r.problem.contains("Phase")));
        assert!(t.iter().any(|r| r.problem.contains("amplification")));
        assert!(t.iter().any(|r| r.problem.contains("Frequency")));
    }
}
