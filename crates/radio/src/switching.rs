//! Mode-switch energy overheads (Table 5).
//!
//! Braiding interleaves modes packet by packet, so the cost of turning
//! carriers and receive chains on and off matters. The paper measured the
//! per-switch energy on each side in each mode and found it negligible —
//! but only because the radio shares modules across modes (§3.1: "we can
//! switch between the modes easier since components need to be turned off
//! and on fewer times"). The link simulator charges these costs on every
//! mode change.

use crate::mode::{Mode, Role};
use braidio_units::Joules;

/// Energy to switch *into* a mode, per side (Table 5).
#[derive(Debug, Clone, Copy)]
pub struct SwitchingOverhead {
    rows: [(Mode, Joules, Joules); 3],
}

impl SwitchingOverhead {
    /// Table 5 as measured (values quoted in Wh in the paper).
    pub fn table5() -> Self {
        SwitchingOverhead {
            rows: [
                (
                    Mode::Active,
                    Joules::from_watt_hours(1.05e-9),
                    Joules::from_watt_hours(1.01e-9),
                ),
                (
                    Mode::Passive,
                    Joules::from_watt_hours(1.72e-9),
                    Joules::from_watt_hours(4.40e-12),
                ),
                (
                    Mode::Backscatter,
                    Joules::from_watt_hours(8.58e-8),
                    Joules::from_watt_hours(1.10e-11),
                ),
            ],
        }
    }

    /// Switch energy for one side entering `mode` as `role`.
    pub fn cost(&self, mode: Mode, role: Role) -> Joules {
        let row = self
            .rows
            .iter()
            .find(|(m, _, _)| *m == mode)
            .expect("all modes present");
        match role {
            Role::Transmitter => row.1,
            Role::Receiver => row.2,
        }
    }

    /// Combined switch energy (both sides) for entering `mode`.
    pub fn both_sides(&self, mode: Mode) -> Joules {
        self.cost(mode, Role::Transmitter) + self.cost(mode, Role::Receiver)
    }
}

impl Default for SwitchingOverhead {
    fn default() -> Self {
        SwitchingOverhead::table5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_units::{BitsPerSecond, Watts};

    #[test]
    fn table5_values() {
        let s = SwitchingOverhead::table5();
        assert!((s.cost(Mode::Active, Role::Transmitter).watt_hours() - 1.05e-9).abs() < 1e-15);
        assert!((s.cost(Mode::Passive, Role::Receiver).watt_hours() - 4.40e-12).abs() < 1e-18);
        assert!(
            (s.cost(Mode::Backscatter, Role::Transmitter).watt_hours() - 8.58e-8).abs() < 1e-14
        );
    }

    #[test]
    fn backscatter_tx_switch_is_the_worst_case() {
        // The paper calls out backscatter at 10 kbps as the worst case.
        let s = SwitchingOverhead::table5();
        let worst = s.cost(Mode::Backscatter, Role::Transmitter);
        for mode in Mode::ALL {
            for role in [Role::Transmitter, Role::Receiver] {
                assert!(s.cost(mode, role) <= worst);
            }
        }
    }

    #[test]
    fn switching_is_negligible_vs_a_packet() {
        // "Experimental results indicate that switching overhead is
        // negligible in all modes" — measured against the *link's* energy
        // per packet. The paper's worst case (backscatter at 10 kbps): one
        // 256-byte packet burns 129 mW × 204.8 ms ≈ 26 mJ on the carrier
        // side, so the 309 µJ switch-in cost is ~1 %.
        let s = SwitchingOverhead::table5();
        let packet_bits = 256.0 * 8.0;
        let airtime = BitsPerSecond::KBPS_10.time_for_bits(packet_bits);
        let link_energy = (Watts::from_microwatts(16.54) + Watts::from_milliwatts(129.0)) * airtime;
        let switch = s.both_sides(Mode::Backscatter);
        assert!(
            switch.joules() < 0.02 * link_energy.joules(),
            "switch {switch} vs packet {link_energy}"
        );
    }

    #[test]
    fn both_sides_sums() {
        let s = SwitchingOverhead::table5();
        let total = s.both_sides(Mode::Passive);
        assert!((total.watt_hours() - (1.72e-9 + 4.40e-12)).abs() < 1e-15);
    }
}
