//! Commercial RFID reader models.
//!
//! * The Table 2 survey: why commercial readers are watt-class devices.
//! * The AS3993 "Fermi" reader model — the paper's hardware baseline
//!   (Fig. 11's adapter board), used in Fig. 12's BER-vs-distance and
//!   5× power-efficiency comparison.

use braidio_phy::ber::ber_coherent;
use braidio_rfsim::{LinkBudget, LinkKind};
use braidio_units::{Meters, Watts};

/// A Table 2 row: a commercial UHF RFID reader chip.
#[derive(Debug, Clone, Copy)]
pub struct ReaderChip {
    /// Part name.
    pub name: &'static str,
    /// Total power consumption at the quoted output power.
    pub total_power: Watts,
    /// Output power at which `total_power` was quoted, dBm.
    pub at_dbm: f64,
    /// Estimated receive-side power consumption.
    pub rx_power: Watts,
    /// Unit cost, USD.
    pub cost_usd: f64,
}

/// The Table 2 survey.
pub fn table2() -> Vec<ReaderChip> {
    vec![
        ReaderChip {
            name: "AS3993",
            total_power: Watts::new(0.64),
            at_dbm: 17.0,
            rx_power: Watts::new(0.25),
            cost_usd: 397.0,
        },
        ReaderChip {
            name: "AS3992",
            total_power: Watts::new(0.73),
            at_dbm: 20.0,
            rx_power: Watts::new(0.26),
            cost_usd: 303.0,
        },
        ReaderChip {
            name: "R2000",
            total_power: Watts::new(1.0),
            at_dbm: 12.0,
            rx_power: Watts::new(0.88),
            cost_usd: 419.0,
        },
        ReaderChip {
            name: "R1000",
            total_power: Watts::new(1.0),
            at_dbm: 12.0,
            rx_power: Watts::new(0.95),
            cost_usd: 500.0,
        },
        ReaderChip {
            name: "M6e",
            total_power: Watts::new(4.2),
            at_dbm: 17.0,
            rx_power: Watts::new(4.0),
            cost_usd: 398.0,
        },
        ReaderChip {
            name: "M6e-micro",
            total_power: Watts::new(2.5),
            at_dbm: 23.0,
            rx_power: Watts::new(2.5),
            cost_usd: 285.0,
        },
    ]
}

/// The AS3993 baseline reader as modelled for Fig. 12.
///
/// A coherent IQ receiver behind active self-interference handling: better
/// sensitivity than Braidio's passive chain (3 m vs 1.8 m at 100 kbps) at
/// 5× the power (640 mW vs 129 mW).
#[derive(Debug, Clone)]
pub struct CommercialReader {
    /// RF link parameters.
    pub budget: LinkBudget,
    /// Carrier output power (17 dBm for the AS3993 configuration).
    pub carrier_rf: Watts,
    /// Total power draw while reading.
    pub total_power: Watts,
    /// Calibrated receiver noise floor.
    noise: Watts,
}

impl CommercialReader {
    /// BER threshold defining "operational" (matches the Braidio
    /// characterization).
    pub const OPERATIONAL_BER: f64 = 1e-2;

    /// The AS3993 at 100 kbps, calibrated to its measured 3 m range.
    pub fn as3993() -> Self {
        let budget = LinkBudget {
            // The reader board uses a proper patch antenna, not a chip
            // antenna; its tag-side loss matches Braidio's tag.
            rx_antenna_gain: braidio_units::Decibels::new(2.0),
            ..LinkBudget::default()
        };
        let carrier_rf = Watts::from_dbm(17.0);
        // Calibrate the coherent receiver's noise floor so BER = 1e-2 at
        // exactly 3 m (the Fig. 12 measurement).
        let gamma_star =
            braidio_phy::ber::snr_for_ber(ber_coherent, Self::OPERATIONAL_BER, 0.1, 1e4);
        let rx_at_anchor =
            budget.received_power(LinkKind::Backscatter, carrier_rf, Meters::new(3.0));
        CommercialReader {
            budget,
            carrier_rf,
            total_power: Watts::new(0.64),
            noise: rx_at_anchor / gamma_star,
        }
    }

    /// BER reading a tag at distance `d` (100 kbps).
    pub fn ber(&self, d: Meters) -> f64 {
        let rx = self
            .budget
            .received_power(LinkKind::Backscatter, self.carrier_rf, d);
        ber_coherent(rx.ratio_db(self.noise).linear())
    }

    /// Operational read range (BER threshold crossing).
    pub fn range(&self) -> Meters {
        let (mut lo, mut hi) = (0.05f64, 100.0f64);
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if self.ber(Meters::new(mid)) <= Self::OPERATIONAL_BER {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Meters::new(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_watt_class() {
        for chip in table2() {
            assert!(
                chip.total_power >= Watts::new(0.6),
                "{} below the paper's several-hundred-mW floor",
                chip.name
            );
        }
    }

    #[test]
    fn as3993_is_the_cheapest_power() {
        let t = table2();
        let as3993 = &t[0];
        assert!(t.iter().all(|c| c.total_power >= as3993.total_power));
    }

    #[test]
    fn range_calibrated_to_3m() {
        let r = CommercialReader::as3993();
        let range = r.range();
        assert!((range.meters() - 3.0).abs() < 0.02, "range {range}");
    }

    #[test]
    fn ber_monotone() {
        let r = CommercialReader::as3993();
        let mut prev = 0.0;
        for d in [0.5, 1.0, 2.0, 3.0, 3.5, 4.0] {
            let b = r.ber(Meters::new(d));
            assert!(b >= prev - 1e-12);
            prev = b;
        }
    }

    #[test]
    fn five_times_braidio_power() {
        // Fig. 12's headline: 640 mW vs 129 mW ≈ 5x.
        let r = CommercialReader::as3993();
        let braidio_reader = Watts::from_milliwatts(129.0);
        let ratio = r.total_power / braidio_reader;
        assert!((ratio - 4.96).abs() < 0.1, "ratio {ratio}");
    }
}
