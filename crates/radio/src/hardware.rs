//! The Braidio bill of materials (Table 4) and the cost argument of §3.1.

use braidio_units::Watts;

/// One hardware module on the Braidio board.
#[derive(Debug, Clone, Copy)]
pub struct Module {
    /// Functional role.
    pub role: &'static str,
    /// Part number.
    pub model: &'static str,
    /// Datasheet-level description (the Table 4 notes).
    pub description: &'static str,
    /// Representative active power draw (where meaningful).
    pub power: Option<Watts>,
}

/// Table 4: the hardware modules of the final Braidio board.
pub fn table4() -> Vec<Module> {
    vec![
        Module {
            role: "Controller",
            model: "ATMEGA328P",
            description: "Arduino-compatible; consumes only 2 mA @ 8 MHz",
            power: Some(Watts::from_milliwatts(6.6)), // 2 mA at 3.3 V
        },
        Module {
            role: "Carrier Emitter",
            model: "SI4432",
            description: "125 mW @ 13 dBm output",
            power: Some(Watts::from_milliwatts(125.0)),
        },
        Module {
            role: "Passive Receiver",
            model: "Moo/WISP front end",
            description: "Reduced Cs and Cp to improve bitrate",
            power: Some(Watts::ZERO),
        },
        Module {
            role: "Baseband Amplifier",
            model: "INA2331",
            description: "Low input capacitance - 1.8 pF",
            power: Some(Watts::from_microwatts(25.0)),
        },
        Module {
            role: "Antenna Switch",
            model: "SKY13267",
            description: "SPDT; less than 10 uW power consumption",
            power: Some(Watts::from_microwatts(8.0)),
        },
        Module {
            role: "Chip Antenna",
            model: "ANT1204LL05R",
            description: "Two antennas separated by 1/8 wavelength, 12 mm each",
            power: None,
        },
        Module {
            role: "SAW Filter",
            model: "SF2049E",
            description: "50 dB suppression at 800 MHz; >30 dB at 2.4 GHz",
            power: Some(Watts::ZERO),
        },
        Module {
            role: "Active Radio",
            model: "SPBT2632C2A",
            description: "Small/low power Bluetooth abstraction over serial",
            power: None,
        },
    ]
}

/// §3.1's bill-of-materials point: the *added* passive components cost
/// roughly "a tag's worth" — compare against a $2.5 BLE chip.
pub fn added_component_roles() -> [&'static str; 5] {
    [
        "Carrier Emitter",
        "Passive Receiver",
        "Baseband Amplifier",
        "Antenna Switch",
        "SAW Filter",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_modules() {
        assert_eq!(table4().len(), 8);
    }

    #[test]
    fn passive_parts_draw_nothing() {
        for m in table4() {
            if m.role == "Passive Receiver" || m.role == "SAW Filter" {
                assert_eq!(m.power, Some(Watts::ZERO), "{} should be passive", m.role);
            }
        }
    }

    #[test]
    fn added_components_exist_in_table() {
        let t = table4();
        for role in added_component_roles() {
            assert!(t.iter().any(|m| m.role == role), "missing {role}");
        }
    }

    #[test]
    fn carrier_emitter_matches_characterization() {
        let t = table4();
        let emitter = t.iter().find(|m| m.role == "Carrier Emitter").unwrap();
        assert_eq!(emitter.power, Some(Watts::from_milliwatts(125.0)));
    }
}
