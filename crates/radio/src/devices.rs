//! The Fig. 1 device catalog: battery capacities of commercial mobile
//! devices, spanning three orders of magnitude from fitness band to laptop.
//!
//! Capacities are computed from public teardown/spec data (mAh × nominal
//! cell voltage) — the same sources the paper cites [3–17].

use crate::battery::Battery;
use core::fmt;

/// A named device with a battery capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Marketing name (as used on the Fig. 15–17 axes).
    pub name: &'static str,
    /// Battery capacity, watt-hours.
    pub battery_wh: f64,
}

impl Device {
    /// A fresh full battery for this device.
    pub fn battery(&self) -> Battery {
        Battery::from_watt_hours(self.battery_wh)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.2} Wh)", self.name, self.battery_wh)
    }
}

/// Nike+ FuelBand: 70 mAh @ 3.7 V.
pub const NIKE_FUEL_BAND: Device = Device {
    name: "Nike Fuel Band",
    battery_wh: 0.26,
};
/// Pebble watch: 130 mAh @ 3.7 V.
pub const PEBBLE_WATCH: Device = Device {
    name: "Pebble Watch",
    battery_wh: 0.48,
};
/// Apple Watch (1st gen): 205 mAh @ 3.8 V.
pub const APPLE_WATCH: Device = Device {
    name: "Apple Watch",
    battery_wh: 0.78,
};
/// Pivothead camera glasses: 440 mAh @ 3.7 V.
pub const PIVOTHEAD: Device = Device {
    name: "Pivothead",
    battery_wh: 1.63,
};
/// iPhone 6S: 1715 mAh @ 3.82 V.
pub const IPHONE_6S: Device = Device {
    name: "iPhone 6S",
    battery_wh: 6.55,
};
/// iPhone 6 Plus: 2915 mAh @ 3.82 V.
pub const IPHONE_6_PLUS: Device = Device {
    name: "iPhone 6 Plus",
    battery_wh: 11.1,
};
/// Nexus 6P: 3450 mAh @ 3.85 V.
pub const NEXUS_6P: Device = Device {
    name: "Nexus 6P",
    battery_wh: 13.3,
};
/// Microsoft Surface Book (base + keyboard batteries).
pub const SURFACE_BOOK: Device = Device {
    name: "Surface Book",
    battery_wh: 70.0,
};
/// MacBook Pro 13" Retina.
pub const MACBOOK_PRO_13: Device = Device {
    name: "MacBook Pro 13",
    battery_wh: 74.9,
};
/// MacBook Pro 15" Retina.
pub const MACBOOK_PRO_15: Device = Device {
    name: "MacBook Pro 15",
    battery_wh: 99.5,
};

/// The full Fig. 1 catalog, smallest battery first (the order of the
/// Fig. 15–17 matrix axes).
pub const CATALOG: [Device; 10] = [
    NIKE_FUEL_BAND,
    PEBBLE_WATCH,
    APPLE_WATCH,
    PIVOTHEAD,
    IPHONE_6S,
    IPHONE_6_PLUS,
    NEXUS_6P,
    SURFACE_BOOK,
    MACBOOK_PRO_13,
    MACBOOK_PRO_15,
];

/// Look a device up by name.
pub fn by_name(name: &str) -> Option<Device> {
    CATALOG.iter().copied().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sorted_by_capacity() {
        for pair in CATALOG.windows(2) {
            assert!(
                pair[0].battery_wh < pair[1].battery_wh,
                "{} before {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn three_orders_of_magnitude() {
        // The paper's motivating observation (Fig. 1).
        let smallest = CATALOG.first().unwrap().battery_wh;
        let largest = CATALOG.last().unwrap().battery_wh;
        let ratio = largest / smallest;
        assert!(
            (100.0..=1000.0).contains(&ratio),
            "laptop/wearable ratio {ratio:.0}"
        );
    }

    #[test]
    // The operands are compile-time constants, which is the point: the
    // catalog itself encodes the order-of-magnitude gap.
    #[allow(clippy::assertions_on_constants)]
    fn laptop_vs_phone_order_of_magnitude() {
        assert!(MACBOOK_PRO_15.battery_wh / IPHONE_6S.battery_wh > 10.0);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("Pivothead"), Some(PIVOTHEAD));
        assert!(by_name("Galaxy Fold").is_none());
    }

    #[test]
    fn battery_constructor() {
        let b = APPLE_WATCH.battery();
        assert!((b.capacity().watt_hours() - 0.78).abs() < 1e-12);
    }
}
