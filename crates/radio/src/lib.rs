//! Radio device models for the Braidio reproduction.
//!
//! This crate is the boundary between physics (`braidio-rfsim`,
//! `braidio-circuits`, `braidio-phy`) and protocol (`braidio-mac`): it
//! packages the paper's hardware into parameterized models.
//!
//! * [`mode`] — the three §4 operating modes (named after receiver state).
//! * [`characterization`] — the empirical characterization the paper's
//!   simulator is driven by: per-(mode, bitrate) TX/RX power, link-budget
//!   calibration anchored to the measured BER = 1e-2 ranges, and the
//!   per-mode BER/availability queries (regenerates Figs. 13–14 inputs).
//! * [`switching`] — Table 5 mode-switch energy overheads.
//! * [`battery`] — energy stores with draw accounting.
//! * [`devices`] — the Fig. 1 battery catalog, Nike Fuel Band → MacBook 15".
//! * [`bluetooth`] — Table 1 chips and the simulation baseline radio.
//! * [`reader`] — Table 2 commercial RFID readers and the AS3993 baseline
//!   of Figs. 11–12.
//! * [`hardware`] — Table 4 bill of materials.

#![warn(missing_docs)]

pub mod battery;
pub mod bluetooth;
pub mod characterization;
pub mod devices;
pub mod hardware;
pub mod mode;
pub mod reader;
pub mod switching;
pub mod versions;

pub use battery::Battery;
pub use characterization::Characterization;
pub use mode::{Mode, Role};
