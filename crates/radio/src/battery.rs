//! Battery model with draw accounting.

use braidio_units::{Joules, Seconds, Watts};

/// A simple energy store. The link simulator draws from two of these and
/// stops when either runs dry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity: Joules,
    remaining: Joules,
}

impl Battery {
    /// A full battery with the given capacity.
    pub fn new(capacity: Joules) -> Self {
        assert!(capacity.is_physical(), "capacity must be non-negative");
        Battery {
            capacity,
            remaining: capacity,
        }
    }

    /// A full battery specified in watt-hours (the Fig. 1 unit).
    pub fn from_watt_hours(wh: f64) -> Self {
        Battery::new(Joules::from_watt_hours(wh))
    }

    /// Nominal capacity.
    pub fn capacity(&self) -> Joules {
        self.capacity
    }

    /// Energy left.
    pub fn remaining(&self) -> Joules {
        self.remaining
    }

    /// State of charge in `[0, 1]`.
    pub fn soc(&self) -> f64 {
        if self.capacity.joules() == 0.0 {
            0.0
        } else {
            self.remaining / self.capacity
        }
    }

    /// True once the battery is exhausted.
    pub fn is_dead(&self) -> bool {
        self.remaining.joules() <= 0.0
    }

    /// Draw a fixed energy. Returns `true` if the battery covered the whole
    /// draw; `false` if it died partway (remaining is clamped to zero).
    pub fn draw(&mut self, energy: Joules) -> bool {
        assert!(energy.is_physical(), "draw must be non-negative");
        let ok = self.remaining >= energy;
        self.remaining = (self.remaining - energy).clamped_non_negative();
        ok
    }

    /// Draw a power for a duration.
    pub fn draw_power(&mut self, power: Watts, duration: Seconds) -> bool {
        self.draw(power * duration)
    }

    /// How long this battery sustains a constant power draw.
    pub fn lifetime_at(&self, power: Watts) -> Seconds {
        if power.watts() <= 0.0 {
            return Seconds::new(f64::INFINITY);
        }
        self.remaining / power
    }

    /// Refill to capacity.
    pub fn recharge(&mut self) {
        self.remaining = self.capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_and_soc() {
        let mut b = Battery::from_watt_hours(1.0);
        assert_eq!(b.soc(), 1.0);
        assert!(b.draw(Joules::new(1800.0)));
        assert!((b.soc() - 0.5).abs() < 1e-12);
        assert!(!b.is_dead());
    }

    #[test]
    fn dies_at_zero_and_clamps() {
        let mut b = Battery::new(Joules::new(10.0));
        assert!(!b.draw(Joules::new(15.0)));
        assert!(b.is_dead());
        assert_eq!(b.remaining(), Joules::ZERO);
    }

    #[test]
    fn power_draw_and_lifetime() {
        let mut b = Battery::from_watt_hours(0.1); // 360 J
        let life = b.lifetime_at(Watts::from_milliwatts(100.0));
        assert!((life.seconds() - 3600.0).abs() < 1e-9);
        assert!(b.draw_power(Watts::from_milliwatts(100.0), Seconds::new(1800.0)));
        assert!((b.soc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_power_lives_forever() {
        let b = Battery::from_watt_hours(0.1);
        assert!(b.lifetime_at(Watts::ZERO).seconds().is_infinite());
    }

    #[test]
    fn recharge_restores() {
        let mut b = Battery::from_watt_hours(0.5);
        b.draw(Joules::new(500.0));
        b.recharge();
        assert_eq!(b.remaining(), b.capacity());
    }
}
