//! Bluetooth baselines.
//!
//! Two things live here:
//!
//! * the Table 1 chip survey (CC2541, CC2640) demonstrating how narrow the
//!   TX/RX power ratio of commercial radios is — the motivating observation;
//! * the module-level Bluetooth radio model used as the comparison baseline
//!   in every Fig. 15–18 experiment (the same SPBT2632C2-class module that
//!   serves as Braidio's active transceiver, so the comparison isolates the
//!   carrier-offload layer rather than chip quality).

use braidio_units::{BitsPerSecond, JoulesPerBit, Watts};

/// A Table 1 row: a commercial Bluetooth chip's power envelope.
#[derive(Debug, Clone, Copy)]
pub struct BluetoothChip {
    /// Part name.
    pub name: &'static str,
    /// Transmit power draw range (min, max).
    pub tx: (Watts, Watts),
    /// Receive power draw range (min, max).
    pub rx: (Watts, Watts),
}

impl BluetoothChip {
    /// TI CC2541 (Bluetooth/BLE): 55–60 mW TX, 59–67 mW RX.
    pub fn cc2541() -> Self {
        BluetoothChip {
            name: "CC2541",
            tx: (Watts::from_milliwatts(55.0), Watts::from_milliwatts(60.0)),
            rx: (Watts::from_milliwatts(59.0), Watts::from_milliwatts(67.0)),
        }
    }

    /// TI CC2640 (BLE): 21–30 mW TX, 19 mW RX.
    pub fn cc2640() -> Self {
        BluetoothChip {
            name: "CC2640",
            tx: (Watts::from_milliwatts(21.0), Watts::from_milliwatts(30.0)),
            rx: (Watts::from_milliwatts(19.0), Watts::from_milliwatts(19.0)),
        }
    }

    /// Both Table 1 rows.
    pub fn table1() -> [BluetoothChip; 2] {
        [BluetoothChip::cc2541(), BluetoothChip::cc2640()]
    }

    /// The achievable TX/RX power-ratio range `(min, max)` — the whole
    /// dynamic range a symmetric radio offers.
    pub fn ratio_range(&self) -> (f64, f64) {
        (self.tx.0 / self.rx.1, self.tx.1 / self.rx.0)
    }
}

/// The simulation baseline: a symmetric Bluetooth link at 1 Mbps.
#[derive(Debug, Clone, Copy)]
pub struct BluetoothRadio {
    /// Transmit-side power draw.
    pub tx: Watts,
    /// Receive-side power draw.
    pub rx: Watts,
    /// Link rate.
    pub rate: BitsPerSecond,
}

impl BluetoothRadio {
    /// The SPBT2632C2-class module baseline (matches Braidio's active-mode
    /// power table; see `characterization`).
    pub fn baseline() -> Self {
        BluetoothRadio {
            tx: Watts::from_milliwatts(86.49),
            rx: Watts::from_milliwatts(90.81),
            rate: BitsPerSecond::MBPS_1,
        }
    }

    /// Transmit energy per bit.
    pub fn tx_energy_per_bit(&self) -> JoulesPerBit {
        self.tx / self.rate
    }

    /// Receive energy per bit.
    pub fn rx_energy_per_bit(&self) -> JoulesPerBit {
        self.rx / self.rate
    }

    /// Total bits a TX battery of `e1` joules and an RX battery of `e2`
    /// joules can move before *either* side dies (the Fig. 15 baseline
    /// computation; Bluetooth cannot shift the burden, so the smaller
    /// effective budget wins).
    pub fn bits_until_death(&self, e1: braidio_units::Joules, e2: braidio_units::Joules) -> f64 {
        let by_tx = e1 / self.tx_energy_per_bit();
        let by_rx = e2 / self.rx_energy_per_bit();
        by_tx.min(by_rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braidio_units::Joules;

    #[test]
    fn table1_ratio_ranges() {
        // Paper: CC2541 supports 0.82–1.0, CC2640 1.1–1.6.
        let (lo, hi) = BluetoothChip::cc2541().ratio_range();
        assert!((lo - 0.82).abs() < 0.01, "cc2541 lo {lo}");
        assert!((hi - 1.017).abs() < 0.02, "cc2541 hi {hi}");
        let (lo, hi) = BluetoothChip::cc2640().ratio_range();
        assert!((lo - 1.105).abs() < 0.01, "cc2640 lo {lo}");
        assert!((hi - 1.579).abs() < 0.01, "cc2640 hi {hi}");
    }

    #[test]
    fn baseline_ratio_matches_fig9_point_a() {
        let b = BluetoothRadio::baseline();
        assert!((b.tx / b.rx - 0.9524).abs() < 1e-3);
    }

    #[test]
    fn bits_limited_by_smaller_side() {
        let b = BluetoothRadio::baseline();
        // Tiny receiver battery dominates.
        let bits = b.bits_until_death(Joules::from_watt_hours(100.0), Joules::from_watt_hours(0.1));
        let expected = Joules::from_watt_hours(0.1) / b.rx_energy_per_bit();
        assert!((bits - expected).abs() < 1.0);
    }

    #[test]
    fn symmetric_budget_limited_by_rx() {
        // RX draws slightly more, so with equal batteries the receiver dies
        // first.
        let b = BluetoothRadio::baseline();
        let e = Joules::from_watt_hours(1.0);
        let bits = b.bits_until_death(e, e);
        assert!((bits - e / b.rx_energy_per_bit()).abs() < 1.0);
    }

    #[test]
    fn energy_per_bit_scale() {
        let b = BluetoothRadio::baseline();
        assert!((b.rx_energy_per_bit().nanojoules_per_bit() - 90.81).abs() < 0.01);
    }
}
