//! Property-based tests for the analog front-end models.

use braidio_circuits::amplifier::InstrumentationAmplifier;
use braidio_circuits::carrier::CarrierEmitter;
use braidio_circuits::charge_pump::DicksonChargePump;
use braidio_circuits::comparator::Comparator;
use braidio_circuits::diode::Diode;
use braidio_circuits::envelope::EnvelopeDetector;
use braidio_circuits::filter::{HighPass, LowPass};
use braidio_circuits::mcu::{Mcu, McuState};
use braidio_circuits::PassiveReceiverChain;
use braidio_units::{Decibels, Hertz, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn diode_current_monotone(v1 in -2.0f64..2.0, dv in 0.001f64..1.0) {
        for d in [Diode::schottky_detector(), Diode::schottky_general()] {
            prop_assert!(d.current(v1 + dv) >= d.current(v1));
        }
    }

    #[test]
    fn pump_small_signal_monotone_and_continuous(v in 0.0f64..2.0, stages in 1usize..8) {
        let p = DicksonChargePump::multi_stage(stages);
        let s = p.small_signal_output(v);
        prop_assert!(s >= 0.0);
        prop_assert!(p.small_signal_output(v + 0.001) >= s);
        // Stage scaling is exactly linear.
        let p1 = DicksonChargePump::multi_stage(1);
        prop_assert!((s - stages as f64 * p1.small_signal_output(v)).abs() < 1e-12 * (1.0 + s));
    }

    #[test]
    fn pump_never_exceeds_ideal(v in 0.0f64..1.5) {
        let p = DicksonChargePump::fig3_single_stage();
        let run = p.transient_sine(v, Hertz::from_mhz(1.0), 30.0);
        let settled = run.settled_output(0.2);
        prop_assert!(settled <= 2.0 * v + 1e-6, "settled {settled} for amp {v}");
    }

    #[test]
    fn envelope_follower_bounded(levels in proptest::collection::vec(0.0f64..2.0, 8..200)) {
        let det = EnvelopeDetector::braidio_fast();
        let out = det.run(&levels, Seconds::from_micros(0.05));
        let max_in = levels.iter().cloned().fold(0.0f64, f64::max);
        for &y in &out {
            prop_assert!((0.0..=max_in + 1e-9).contains(&y));
        }
    }

    #[test]
    fn filters_bounded_gain(f_hz in 1.0f64..1e7) {
        let hp = HighPass::new(Hertz::from_khz(1.0));
        let lp = LowPass::new(Hertz::from_khz(1.0));
        let f = Hertz::new(f_hz);
        prop_assert!((0.0..=1.0).contains(&hp.magnitude_at(f)));
        prop_assert!((0.0..=1.0).contains(&lp.magnitude_at(f)));
        // Complementary power splits near the crossover stay sane.
        let total = hp.magnitude_at(f).powi(2) + lp.magnitude_at(f).powi(2);
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amplifier_clips_symmetrically(x in -10.0f64..10.0) {
        let a = InstrumentationAmplifier::ina2331();
        let y = a.amplify(x);
        prop_assert!(y.abs() <= a.rail + 1e-12);
        prop_assert!((a.amplify(-x) + y).abs() < 1e-9);
    }

    #[test]
    fn comparator_output_follows_large_swings(th in -0.5f64..0.5) {
        let c = Comparator::ncs2200().with_threshold(th);
        let out = c.run(&[th - 1.0, th + 1.0, th - 1.0]);
        prop_assert_eq!(out, vec![false, true, false]);
    }

    #[test]
    fn carrier_draw_superlinear_never(dbm in -20.0f64..20.0) {
        let c = CarrierEmitter::si4432();
        let d = c.draw_at_dbm(dbm);
        prop_assert!(d >= c.base_draw);
        prop_assert!(d <= c.base_draw + c.max_output / c.pa_efficiency);
    }

    #[test]
    fn mcu_energy_linear(cycles in 1.0f64..1e7) {
        let m = Mcu::atmega328p();
        let e = m.compute_energy(cycles);
        prop_assert!(e.joules() > 0.0);
        prop_assert!((m.compute_energy(2.0 * cycles).joules() - 2.0 * e.joules()).abs()
            < 1e-9 * e.joules());
        prop_assert!(m.draw(McuState::Sleep) < m.draw(McuState::Active));
    }

    #[test]
    fn chain_swing_monotone_in_envelope(v in 0.0f64..0.5, dv in 0.001f64..0.1) {
        let chain = PassiveReceiverChain::braidio();
        let f = Hertz::from_khz(100.0);
        prop_assert!(chain.baseband_swing(v + dv, f) >= chain.baseband_swing(v, f) - 1e-12);
    }

    #[test]
    fn chain_power_independent_of_signal(_v in 0.0f64..1.0) {
        let chain = PassiveReceiverChain::braidio();
        prop_assert!(chain.quiescent_power() < Watts::from_microwatts(50.0));
    }

    /// The fused streaming pipeline must be bit-for-bit identical to the
    /// stage-major batch composition (one full vector per stage — the
    /// pre-fusion shape of `demodulate`) for arbitrary chain tunings,
    /// sample intervals and waveforms.
    #[test]
    fn streaming_demodulation_matches_stage_major_batch(
        attack_us in 0.05f64..0.5,
        decay_mult in 2.0f64..20.0,
        cutoff_khz in 0.2f64..5.0,
        gain_db in 0.0f64..60.0,
        hysteresis in 0.0f64..0.01,
        stages in 1usize..4,
        matching in 1.0f64..5.0,
        dt_us in 0.02f64..0.5,
        env in proptest::collection::vec(0.0f64..0.3, 16..400),
    ) {
        let mut chain = PassiveReceiverChain::braidio();
        chain.pump = DicksonChargePump::multi_stage(stages);
        chain.detector = EnvelopeDetector::new(
            Seconds::from_micros(attack_us),
            Seconds::from_micros(attack_us * decay_mult),
        );
        chain.highpass = HighPass::new(Hertz::from_khz(cutoff_khz));
        chain.amplifier.gain = Decibels::new(gain_db);
        chain.comparator.hysteresis = hysteresis;
        chain.matching_gain = matching;
        let dt = Seconds::from_micros(dt_us);

        // Stage-major reference: each stage consumes its predecessor's
        // full output vector.
        let pumped: Vec<f64> = env
            .iter()
            .map(|&v| chain.pump.small_signal_output(v * chain.matching_gain))
            .collect();
        let followed = chain.detector.run(&pumped, dt);
        let hp = chain.highpass.run(&followed, dt);
        let amped = chain.amplifier.run(&hp);
        let reference = chain.comparator.with_threshold(0.0).run(&amped);

        // The wrapper and a manual per-sample streaming fold both match.
        prop_assert_eq!(&chain.demodulate(&env, dt), &reference);
        let mut s = chain.streaming(dt);
        for (i, &v) in env.iter().enumerate() {
            prop_assert_eq!(s.push(v), reference[i], "sample {}", i);
        }
    }
}
