//! Nanopower comparator (NCS2200/TS881-class) — the slicer at the end of
//! the passive receive chain.
//!
//! §3.2: "the signal amplitude has to be at least several mV for the
//! comparator to generate the correct output" — this minimum resolvable
//! input is what sets the bare envelope detector's ~-40 dBm sensitivity and
//! why the instrumentation amplifier is needed in front.

use braidio_units::Watts;

/// A comparator with threshold, hysteresis and a minimum resolvable swing.
#[derive(Debug, Clone, Copy)]
pub struct Comparator {
    /// Decision threshold, volts.
    pub threshold: f64,
    /// Hysteresis half-width, volts: the input must cross
    /// `threshold ± hysteresis` to flip the output.
    pub hysteresis: f64,
    /// Minimum input swing that produces a valid decision, volts
    /// ("several mV" per the NCS2200/TS881 datasheets).
    pub min_swing: f64,
    /// Quiescent power draw.
    pub power: Watts,
}

impl Comparator {
    /// The NCS2200-class nanopower comparator on Braidio's board.
    pub fn ncs2200() -> Self {
        Comparator {
            threshold: 0.0,
            hysteresis: 0.002,
            min_swing: 0.004,
            power: Watts::from_microwatts(2.0),
        }
    }

    /// A comparator re-centered on a new threshold.
    pub fn with_threshold(self, threshold: f64) -> Self {
        Comparator { threshold, ..self }
    }

    /// Streaming slicer state: latched output plus the hysteresis band.
    ///
    /// [`run`] is a thin batch wrapper over the returned state, so the two
    /// paths share one decision rule and are bit-identical.
    ///
    /// [`run`]: Comparator::run
    pub fn slicer(&self) -> SlicerState {
        SlicerState {
            rise: self.threshold + self.hysteresis,
            fall: self.threshold - self.hysteresis,
            state: false,
        }
    }

    /// Slice a sample stream into booleans, applying hysteresis.
    ///
    /// Batch wrapper over [`Comparator::slicer`]; allocates only the
    /// output vector.
    pub fn run(&self, samples: &[f64]) -> Vec<bool> {
        let mut slicer = self.slicer();
        samples.iter().map(|&x| slicer.push(x)).collect()
    }

    /// Would a signal with the given peak-to-peak swing be resolvable at
    /// all?
    pub fn resolves(&self, swing: f64) -> bool {
        swing >= self.min_swing
    }
}

/// O(1) streaming state of the hysteresis slicer: the latched output and
/// the precomputed rise/fall crossing levels.
///
/// Obtained from [`Comparator::slicer`]; one [`push`] per sample. This is
/// the decision stage of the fused demodulation pipeline
/// ([`crate::streaming::StreamingChain`]).
///
/// [`push`]: SlicerState::push
#[derive(Debug, Clone, Copy)]
pub struct SlicerState {
    rise: f64,
    fall: f64,
    state: bool,
}

impl SlicerState {
    /// Advance the slicer by one sample and return its latched output.
    #[inline]
    pub fn push(&mut self, x: f64) -> bool {
        if self.state {
            if x < self.fall {
                self.state = false;
            }
        } else if x > self.rise {
            self.state = true;
        }
        self.state
    }

    /// The slicer's current latched output.
    pub fn output(&self) -> bool {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_a_clean_square() {
        let c = Comparator::ncs2200().with_threshold(0.5);
        let samples = [0.0, 0.0, 1.0, 1.0, 0.0, 1.0];
        let out = c.run(&samples);
        assert_eq!(out, vec![false, false, true, true, false, true]);
    }

    #[test]
    fn hysteresis_rejects_small_ripple() {
        let c = Comparator {
            threshold: 0.5,
            hysteresis: 0.1,
            min_swing: 0.004,
            power: Watts::from_microwatts(2.0),
        };
        // Ripple of ±0.05 around the threshold never crosses the hysteresis
        // band, so the output stays put.
        let samples = [0.52, 0.48, 0.53, 0.47, 0.52];
        let out = c.run(&samples);
        assert!(out.iter().all(|&b| !b), "{out:?}");
    }

    #[test]
    fn hysteresis_latches_until_full_crossing() {
        let c = Comparator {
            threshold: 0.5,
            hysteresis: 0.1,
            min_swing: 0.004,
            power: Watts::ZERO,
        };
        let samples = [0.0, 0.7, 0.45, 0.7, 0.3, 0.0];
        let out = c.run(&samples);
        // Rises at 0.7, holds through 0.45 (inside band), drops at 0.3.
        assert_eq!(out, vec![false, true, true, true, false, false]);
    }

    #[test]
    fn min_swing_gate() {
        let c = Comparator::ncs2200();
        assert!(!c.resolves(0.001));
        assert!(c.resolves(0.010));
    }

    #[test]
    fn nanopower_budget() {
        assert!(Comparator::ncs2200().power < Watts::from_microwatts(5.0));
    }
}
