//! Analog front-end simulation for the Braidio reproduction.
//!
//! The paper's passive receive chain (§3.2, Fig. 3, Table 4) is:
//!
//! ```text
//! antenna → SAW filter → N-stage RF charge pump → high-pass filter
//!         → instrumentation amplifier (INA2331) → comparator (NCS2200)
//! ```
//!
//! plus an SPDT antenna switch (SKY13267) for the two-antenna diversity
//! scheme. This crate simulates each block at the level the paper's
//! arguments need:
//!
//! * [`diode`] — piecewise-linear Schottky diode, the nonlinearity behind
//!   both the charge pump and the envelope detector.
//! * [`charge_pump`] — transient simulation of the Dickson RF charge pump,
//!   reproducing Fig. 3(b), with steady-state boost/impedance formulas.
//! * [`envelope`] — attack/decay envelope detector used by the Monte-Carlo
//!   OOK demodulator in `braidio-phy`.
//! * [`filter`] — single-pole RC high-pass (the self-interference → DC
//!   rejection trick) and low-pass.
//! * [`amplifier`] — the high-impedance, low-input-capacitance baseband
//!   amplifier, with source-loading effects.
//! * [`comparator`] — threshold + hysteresis slicer.
//! * [`switch`] — SPDT antenna switch.
//! * [`harvester`] — the same pump used as a WISP-style RF energy
//!   harvester: battery-free tag-mode operating range.
//! * [`carrier`] — the SI4432-class programmable carrier emitter (the
//!   125 mW that carrier offload moves between endpoints).
//! * [`mcu`] — the ATMEGA328P-class controller power model.
//! * [`chain`] — the assembled passive receive chain with its power budget.
//! * [`streaming`] — the same chain fused into a per-sample, O(1)-state
//!   streaming pipeline (the Monte-Carlo hot path).

#![warn(missing_docs)]

pub mod amplifier;
pub mod carrier;
pub mod chain;
pub mod charge_pump;
pub mod comparator;
pub mod diode;
pub mod envelope;
pub mod filter;
pub mod harvester;
pub mod mcu;
pub mod streaming;
pub mod switch;

pub use chain::PassiveReceiverChain;
pub use charge_pump::DicksonChargePump;
pub use diode::Diode;
pub use streaming::StreamingChain;
