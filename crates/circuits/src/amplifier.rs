//! Baseband instrumentation amplifier (INA2331-class).
//!
//! §3.2: "A charge pump boosts voltage but it also increases the output
//! impedance significantly … the amplifier has to be high impedance and low
//! input capacitance, otherwise the signal will be greatly reduced."
//! The model captures exactly that interaction: the amplifier's finite
//! input impedance and input capacitance form a divider / low-pass against
//! the pump's output impedance.

use braidio_units::{Decibels, Hertz, Watts};

/// An instrumentation amplifier with source-loading effects.
#[derive(Debug, Clone, Copy)]
pub struct InstrumentationAmplifier {
    /// Mid-band voltage gain.
    pub gain: Decibels,
    /// Input resistance, ohms.
    pub input_resistance: f64,
    /// Input capacitance, farads (INA2331: 1.8 pF, Table 4).
    pub input_capacitance: f64,
    /// Supply rail, volts (output clips to `[0, rail]`).
    pub rail: f64,
    /// Quiescent power draw.
    pub power: Watts,
}

impl InstrumentationAmplifier {
    /// The INA2331-class part used on Braidio (Table 4): low input
    /// capacitance (1.8 pF), high input impedance, micropower.
    pub fn ina2331() -> Self {
        InstrumentationAmplifier {
            gain: Decibels::new(40.0),
            input_resistance: 1e10,
            input_capacitance: 1.8e-12,
            rail: 3.0,
            power: Watts::from_microwatts(25.0),
        }
    }

    /// A generic op-amp front end with much higher input capacitance, for
    /// the "otherwise the signal will be greatly reduced" comparison.
    pub fn sloppy_opamp() -> Self {
        InstrumentationAmplifier {
            input_capacitance: 50e-12,
            input_resistance: 1e6,
            ..InstrumentationAmplifier::ina2331()
        }
    }

    /// The fraction of the source voltage that survives the resistive
    /// divider formed with a source of impedance `source_z` ohms.
    pub fn dc_coupling(&self, source_z: f64) -> f64 {
        self.input_resistance / (self.input_resistance + source_z)
    }

    /// The -3 dB bandwidth imposed by `source_z` against the input
    /// capacitance, hertz.
    pub fn loaded_bandwidth(&self, source_z: f64) -> Hertz {
        Hertz::new(1.0 / (2.0 * core::f64::consts::PI * source_z * self.input_capacitance))
    }

    /// Total input coupling (divider × capacitive roll-off) at baseband
    /// frequency `f` for a source of impedance `source_z`.
    pub fn coupling_at(&self, source_z: f64, f: Hertz) -> f64 {
        let dc = self.dc_coupling(source_z);
        let fc = self.loaded_bandwidth(source_z);
        let r = f / fc;
        dc / (1.0 + r * r).sqrt()
    }

    /// Amplify one sample (volts), clipping at the rails.
    pub fn amplify(&self, x: f64) -> f64 {
        (x * self.gain.amplitude()).clamp(-self.rail, self.rail)
    }

    /// Amplify a sequence of samples.
    pub fn run(&self, samples: &[f64]) -> Vec<f64> {
        samples.iter().map(|&x| self.amplify(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_applied_linearly() {
        let a = InstrumentationAmplifier::ina2331();
        // 40 dB -> 100x voltage.
        assert!((a.amplify(0.001) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn clips_at_rail() {
        let a = InstrumentationAmplifier::ina2331();
        assert_eq!(a.amplify(1.0), 3.0);
        assert_eq!(a.amplify(-1.0), -3.0);
    }

    #[test]
    fn high_impedance_keeps_signal() {
        // Against a 10 kΩ charge-pump source, the INA2331 loses essentially
        // nothing at DC.
        let a = InstrumentationAmplifier::ina2331();
        assert!(a.dc_coupling(10_000.0) > 0.999);
    }

    #[test]
    fn sloppy_opamp_loses_bandwidth() {
        // 50 pF input capacitance against 10 kΩ source: corner at ~318 kHz,
        // already attenuating a 1 Mbps baseband. The INA2331 corner is
        // ~8.8 MHz.
        let good = InstrumentationAmplifier::ina2331();
        let bad = InstrumentationAmplifier::sloppy_opamp();
        let z = 10_000.0;
        assert!(good.loaded_bandwidth(z).hz() > 5e6);
        assert!(bad.loaded_bandwidth(z).hz() < 5e5);
        let f = Hertz::from_mhz(1.0);
        assert!(good.coupling_at(z, f) > 0.98);
        assert!(bad.coupling_at(z, f) < 0.35);
    }

    #[test]
    fn coupling_collapses_with_huge_source_impedance() {
        // Many pump stages -> very high source impedance -> signal loss even
        // into a good amplifier: the tuning tension described in §3.2.
        let a = InstrumentationAmplifier::ina2331();
        let z_8stage = 80_000.0;
        assert!(a.coupling_at(z_8stage, Hertz::from_mhz(1.0)) < 0.75);
    }

    #[test]
    fn run_maps_amplify() {
        let a = InstrumentationAmplifier::ina2331();
        let out = a.run(&[0.0, 0.001, 0.01]);
        assert_eq!(out.len(), 3);
        assert!((out[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn micropower_budget() {
        let a = InstrumentationAmplifier::ina2331();
        assert!(a.power < Watts::from_microwatts(50.0));
    }
}
