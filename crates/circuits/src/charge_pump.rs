//! Transient simulation of the Dickson RF charge pump (Fig. 3).
//!
//! The single-stage pump (Fig. 3a) is a voltage doubler: coupling capacitor
//! `C1` from the RF input to node B, clamp diode `D1` from ground to B, and
//! series diode `D2` from B to the output node C held by `C2`. On negative
//! half-cycles D1 charges C1; on positive half-cycles D2 pushes that charge
//! onto C2, so the DC output settles near twice the input amplitude — the
//! paper's TINA simulation (Fig. 3b) shows a 1 V sine producing ≈2 V DC.
//!
//! The N-stage generalization couples odd nodes to the RF input and even
//! nodes to ground; each stage adds another doubling, giving the `2N` boost
//! quoted in §3.2 — at the price of output impedance growing with `N`,
//! which is why the instrumentation amplifier downstream must have high
//! input impedance.

use crate::diode::Diode;
use braidio_units::{Hertz, Seconds};

/// An N-stage Dickson charge pump with a resistive load.
#[derive(Debug, Clone, Copy)]
pub struct DicksonChargePump {
    /// Number of stages (1 stage = 2 diodes, the Fig. 3a doubler).
    pub stages: usize,
    /// Coupling capacitance per stage, farads.
    pub c_stage: f64,
    /// Output hold capacitance, farads.
    pub c_out: f64,
    /// Diode model used for every stage.
    pub diode: Diode,
    /// DC load resistance at the output, ohms (`f64::INFINITY` = open).
    pub load: f64,
}

impl DicksonChargePump {
    /// The Fig. 3a single-stage pump: 100 pF coupling and hold capacitors,
    /// near-ideal detector diodes, open-circuit output.
    pub fn fig3_single_stage() -> Self {
        DicksonChargePump {
            stages: 1,
            c_stage: 100e-12,
            c_out: 100e-12,
            diode: Diode::schottky_detector(),
            load: f64::INFINITY,
        }
    }

    /// A multi-stage pump as used for sensitivity boosting.
    pub fn multi_stage(stages: usize) -> Self {
        assert!(stages >= 1, "need at least one stage");
        DicksonChargePump {
            stages,
            ..DicksonChargePump::fig3_single_stage()
        }
    }

    /// Ideal (no-load) steady-state DC output for a sine input of amplitude
    /// `v_amp`: `2N·(v_amp − v_f)`.
    pub fn ideal_output(&self, v_amp: f64) -> f64 {
        2.0 * self.stages as f64 * (v_amp - self.diode.v_f).max(0.0)
    }

    /// Small-signal DC output for a sine of amplitude `v_amp`, including the
    /// square-law detection region below the diode threshold.
    ///
    /// Zero-bias Schottky detectors do not switch off abruptly below `v_f`;
    /// they rectify as square-law detectors. We use the standard C¹ blend:
    /// per stage, `s(v) = v²/(4·v_f)` for `v < 2·v_f` and `s(v) = v − v_f`
    /// above, scaled by the `2N` stage boost. This is what makes microvolt
    /// sensitivities reachable once the instrumentation amplifier is added.
    pub fn small_signal_output(&self, v_amp: f64) -> f64 {
        let v = v_amp.max(0.0);
        let vf = self.diode.v_f;
        let per_stage = if v < 2.0 * vf {
            v * v / (4.0 * vf)
        } else {
            v - vf
        };
        2.0 * self.stages as f64 * per_stage
    }

    /// Small-signal output impedance at pumping frequency `f`:
    /// `N / (f·C)` — the reason the downstream amplifier must be high
    /// impedance (§3.2).
    pub fn output_impedance(&self, f: Hertz) -> f64 {
        self.stages as f64 / (f.hz() * self.c_stage)
    }

    /// Transient-simulate the pump for `duration` with time step `dt`,
    /// driven by `drive(t_seconds) -> volts`.
    ///
    /// Integration is explicit Euler on the node voltages; the PWL diode
    /// keeps the system non-stiff provided `dt ≪ r_on · C` (asserted).
    pub fn transient(
        &self,
        drive: impl Fn(f64) -> f64,
        duration: Seconds,
        dt: Seconds,
    ) -> Transient {
        let dt_s = dt.seconds();
        assert!(dt_s > 0.0, "dt must be positive");
        assert!(
            dt_s < 0.5 * self.diode.r_on * self.c_stage.min(self.c_out),
            "dt too large for stability: dt={} r_on*C={}",
            dt_s,
            self.diode.r_on * self.c_stage.min(self.c_out)
        );
        let steps = (duration.seconds() / dt_s).ceil() as usize;
        let n = self.stages * 2; // internal nodes: 1..n, node n is the output
                                 // Node voltages; index 0 is ground (input coupling handled via dphi).
        let mut v = vec![0.0f64; n + 1];
        let mut out = Transient {
            dt,
            input: Vec::with_capacity(steps),
            internal: Vec::with_capacity(steps),
            output: Vec::with_capacity(steps),
        };
        let mut prev_drive = drive(0.0);
        for k in 0..steps {
            let t = k as f64 * dt_s;
            let cur_drive = drive(t);
            let ddrive = cur_drive - prev_drive;
            prev_drive = cur_drive;

            // Diode currents: diode i connects node i-1 -> node i.
            let mut idio = vec![0.0f64; n + 1];
            for i in 1..=n {
                idio[i] = self.diode.current(v[i - 1] - v[i]);
            }
            // Load current out of the final node.
            let iload = if self.load.is_finite() {
                v[n] / self.load
            } else {
                0.0
            };

            // Node updates. Odd internal nodes are capacitively coupled to
            // the drive (bottom plate moves with it); even nodes to ground.
            for i in 1..n {
                let cap_kick = if i % 2 == 1 { ddrive } else { 0.0 };
                v[i] += cap_kick + dt_s * (idio[i] - idio[i + 1]) / self.c_stage;
            }
            // Output node: hold capacitor to ground plus load.
            v[n] += dt_s * (idio[n] - iload) / self.c_out;

            out.input.push(cur_drive);
            out.internal.push(v[1]);
            out.output.push(v[n]);
        }
        out
    }

    /// Convenience: drive with a sine of amplitude `v_amp` at `f` for
    /// `cycles` full cycles, ~200 samples per cycle.
    pub fn transient_sine(&self, v_amp: f64, f: Hertz, cycles: f64) -> Transient {
        let period = f.period_seconds();
        let dt = Seconds::new((period / 200.0).min(0.4 * self.diode.r_on * self.c_stage));
        let duration = Seconds::new(period * cycles);
        self.transient(
            |t| v_amp * (2.0 * core::f64::consts::PI * f.hz() * t).sin(),
            duration,
            dt,
        )
    }
}

/// Sampled waveforms from a transient run: the Fig. 3b traces.
#[derive(Debug, Clone)]
pub struct Transient {
    /// Sample interval.
    pub dt: Seconds,
    /// Input drive (trace "A" in Fig. 3b).
    pub input: Vec<f64>,
    /// Voltage between the diodes (trace "B").
    pub internal: Vec<f64>,
    /// Output voltage (trace "C").
    pub output: Vec<f64>,
}

impl Transient {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.output.len()
    }

    /// True if the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.output.is_empty()
    }

    /// Final output voltage.
    pub fn final_output(&self) -> f64 {
        *self.output.last().expect("empty transient")
    }

    /// Mean of the last `fraction` of the output trace (settled DC value).
    pub fn settled_output(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction) && fraction > 0.0);
        let start = ((1.0 - fraction) * self.output.len() as f64) as usize;
        let tail = &self.output[start..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Peak-to-peak ripple over the last `fraction` of the output trace.
    pub fn output_ripple(&self, fraction: f64) -> f64 {
        let start = ((1.0 - fraction) * self.output.len() as f64) as usize;
        let tail = &self.output[start..];
        let max = tail.iter().cloned().fold(f64::MIN, f64::max);
        let min = tail.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_doubler_reaches_two_volts() {
        // 1 V sine in -> ~2 V DC out (paper: "Given a sine wave signal with
        // amplitude of 1V, it can generate 2V DC voltage at the output").
        let pump = DicksonChargePump::fig3_single_stage();
        let run = pump.transient_sine(1.0, Hertz::from_mhz(1.0), 50.0);
        let settled = run.settled_output(0.1);
        assert!(
            (settled - 2.0).abs() < 0.15,
            "settled output {settled} V, expected ~2 V"
        );
    }

    #[test]
    fn output_monotonically_pumps_up() {
        let pump = DicksonChargePump::fig3_single_stage();
        let run = pump.transient_sine(1.0, Hertz::from_mhz(1.0), 10.0);
        // Sample the output once per cycle; it should be non-decreasing
        // (within numerical slack) while pumping up.
        let per_cycle = run.len() / 10;
        let mut prev = -1.0;
        for c in 0..10 {
            let v = run.output[c * per_cycle + per_cycle - 1];
            assert!(v >= prev - 1e-3, "cycle {c}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn two_stages_doubles_the_boost() {
        let p1 = DicksonChargePump::multi_stage(1);
        let p2 = DicksonChargePump::multi_stage(2);
        let f = Hertz::from_mhz(1.0);
        let o1 = p1.transient_sine(1.0, f, 80.0).settled_output(0.1);
        let o2 = p2.transient_sine(1.0, f, 80.0).settled_output(0.1);
        assert!(
            (o2 / o1 - 2.0).abs() < 0.15,
            "stage scaling: {o1} -> {o2} (ratio {})",
            o2 / o1
        );
    }

    #[test]
    fn ideal_output_formula() {
        let p = DicksonChargePump::multi_stage(3);
        let expected = 2.0 * 3.0 * (1.0 - p.diode.v_f);
        assert!((p.ideal_output(1.0) - expected).abs() < 1e-12);
        assert_eq!(p.ideal_output(0.0), 0.0);
    }

    #[test]
    fn small_signal_blend_is_continuous_and_monotone() {
        let p = DicksonChargePump::multi_stage(2);
        let vf = p.diode.v_f;
        // Continuity at the 2·v_f knee.
        let below = p.small_signal_output(2.0 * vf - 1e-9);
        let above = p.small_signal_output(2.0 * vf + 1e-9);
        assert!((below - above).abs() < 1e-6);
        // Monotone over a wide range.
        let mut prev = -1.0;
        for i in 0..200 {
            let s = p.small_signal_output(0.001 * i as f64);
            assert!(s >= prev);
            prev = s;
        }
        // Matches the ideal linear law well above threshold.
        assert!((p.small_signal_output(1.0) - p.ideal_output(1.0)).abs() < 1e-12);
    }

    #[test]
    fn square_law_region_quadratic() {
        let p = DicksonChargePump::multi_stage(1);
        let a = p.small_signal_output(0.002);
        let b = p.small_signal_output(0.004);
        assert!(
            (b / a - 4.0).abs() < 1e-9,
            "square law: doubling input quadruples output"
        );
    }

    #[test]
    fn loaded_pump_sags() {
        let open = DicksonChargePump::fig3_single_stage();
        let loaded = DicksonChargePump {
            load: 100_000.0,
            ..open
        };
        let f = Hertz::from_mhz(1.0);
        let v_open = open.transient_sine(1.0, f, 60.0).settled_output(0.1);
        let v_loaded = loaded.transient_sine(1.0, f, 60.0).settled_output(0.1);
        assert!(
            v_loaded < v_open - 0.05,
            "load should sag output: {v_loaded} vs {v_open}"
        );
    }

    #[test]
    fn output_impedance_grows_with_stages() {
        let f = Hertz::from_mhz(1.0);
        let z1 = DicksonChargePump::multi_stage(1).output_impedance(f);
        let z4 = DicksonChargePump::multi_stage(4).output_impedance(f);
        assert!((z4 / z1 - 4.0).abs() < 1e-9);
        // 1 stage, 100 pF at 1 MHz -> 10 kΩ.
        assert!((z1 - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn weak_input_below_threshold_pumps_nothing() {
        let pump = DicksonChargePump::fig3_single_stage();
        let run = pump.transient_sine(0.005, Hertz::from_mhz(1.0), 30.0);
        assert!(run.settled_output(0.2) < 0.01);
    }

    #[test]
    fn ripple_is_small_once_settled() {
        let pump = DicksonChargePump::fig3_single_stage();
        let run = pump.transient_sine(1.0, Hertz::from_mhz(1.0), 60.0);
        assert!(run.output_ripple(0.05) < 0.1);
    }

    #[test]
    #[should_panic(expected = "dt too large")]
    fn unstable_dt_rejected() {
        let pump = DicksonChargePump::fig3_single_stage();
        let _ = pump.transient(
            |_| 0.0,
            Seconds::from_micros(10.0),
            Seconds::from_micros(1.0),
        );
    }
}
