//! The assembled passive receive chain:
//! charge pump → high-pass → instrumentation amplifier → comparator,
//! behind the SPDT diversity switch.
//!
//! This is the "tag's worth of components" Braidio adds to a BLE-class
//! active radio (§3.1). The chain exposes two views:
//!
//! * a *sample pipeline* ([`PassiveReceiverChain::demodulate`]) used by the
//!   Monte-Carlo OOK BER experiments in `braidio-phy`;
//! * closed-form *budget* queries: sensitivity (minimum antenna-referred
//!   envelope that still slices correctly) and quiescent power, used by the
//!   radio characterization.

use crate::amplifier::InstrumentationAmplifier;
use crate::charge_pump::DicksonChargePump;
use crate::comparator::Comparator;
use crate::envelope::EnvelopeDetector;
use crate::filter::HighPass;
use crate::streaming::StreamingChain;
use crate::switch::AntennaSwitch;
use braidio_units::{Hertz, Seconds, Watts};

/// The full passive (envelope-detector) receive chain.
#[derive(Debug, Clone, Copy)]
pub struct PassiveReceiverChain {
    /// RF charge pump front end.
    pub pump: DicksonChargePump,
    /// Envelope-follower dynamics of the detector (attack/decay).
    pub detector: EnvelopeDetector,
    /// Self-interference DC rejection filter.
    pub highpass: HighPass,
    /// Baseband amplifier.
    pub amplifier: InstrumentationAmplifier,
    /// Output slicer.
    pub comparator: Comparator,
    /// Diversity/antenna switch.
    pub switch: AntennaSwitch,
    /// RF carrier frequency.
    pub carrier: Hertz,
    /// Passive voltage gain of the antenna matching network (L-match Q).
    pub matching_gain: f64,
    /// Baseband source impedance seen by the amplifier (pump output plus
    /// diode junction resistance at weak signal levels), ohms. This is the
    /// impedance that "increases significantly" with pump stages (§3.2).
    pub source_impedance: f64,
}

impl PassiveReceiverChain {
    /// Braidio's receive chain as built (Table 4 parts), tuned for 1 Mbps.
    pub fn braidio() -> Self {
        PassiveReceiverChain {
            pump: DicksonChargePump::multi_stage(2),
            detector: EnvelopeDetector::braidio_fast(),
            highpass: HighPass::braidio_si_reject(),
            amplifier: InstrumentationAmplifier::ina2331(),
            comparator: Comparator::ncs2200(),
            switch: AntennaSwitch::sky13267(),
            carrier: Hertz::UHF_915M,
            matching_gain: 3.0,
            source_impedance: 100e3,
        }
    }

    /// A bare tag-style receiver: pump + comparator only, no amplifier —
    /// the ~-40 dBm-sensitivity configuration the paper starts from.
    pub fn bare_tag() -> Self {
        let mut c = PassiveReceiverChain::braidio();
        c.amplifier.gain = braidio_units::Decibels::ZERO;
        c
    }

    /// Quiescent power of the active parts of the chain (the pump, filter
    /// and detector are passive): amplifier + comparator + switch.
    pub fn quiescent_power(&self) -> Watts {
        self.amplifier.power + self.comparator.power + self.switch.power
    }

    /// Small-signal baseband voltage swing at the comparator input for an
    /// antenna-referred envelope swing `v_env` (volts), at baseband
    /// frequency `f_baseband`.
    pub fn baseband_swing(&self, v_env: f64, f_baseband: Hertz) -> f64 {
        // Matching network boosts the antenna voltage passively, then the
        // pump rectifies (square-law for weak signals, linear above the
        // diode threshold).
        let pumped = self.pump.small_signal_output(v_env * self.matching_gain);
        // Loading of the baseband source impedance by the amplifier input.
        let coupled = pumped
            * self
                .amplifier
                .coupling_at(self.source_impedance, f_baseband);
        // High-pass passes the baseband (corner is far below), amplifier
        // applies gain and rails.
        let hp = self.highpass.magnitude_at(f_baseband);
        self.amplifier.amplify(coupled * hp)
    }

    /// Minimum antenna-referred envelope swing (volts) that still produces
    /// a valid comparator decision at `f_baseband`, found by bisection.
    pub fn min_detectable_envelope(&self, f_baseband: Hertz) -> f64 {
        let ok = |v: f64| self.baseband_swing(v, f_baseband) >= self.comparator.min_swing;
        let (mut lo, mut hi) = (0.0f64, 2.0f64);
        if !ok(hi) {
            return f64::INFINITY;
        }
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if ok(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Sensitivity as an RF power at the antenna (dBm into 50 Ω) for a
    /// fully modulated OOK envelope at `f_baseband`.
    pub fn sensitivity_dbm(&self, f_baseband: Hertz) -> f64 {
        let v = self.min_detectable_envelope(f_baseband);
        if !v.is_finite() {
            return f64::INFINITY;
        }
        let p_watts = v * v / (2.0 * 50.0);
        Watts::new(p_watts).dbm()
    }

    /// Per-sample streaming form of the chain for samples spaced `dt`
    /// apart: boost → pump → detector → high-pass → amp → comparator as one
    /// `push(sample) -> bool` state machine with no per-sample allocation.
    pub fn streaming(&self, dt: Seconds) -> StreamingChain {
        StreamingChain::new(self, dt)
    }

    /// Run the full sample pipeline: antenna-referred envelope samples →
    /// sliced bits at the comparator output.
    ///
    /// Thin batch wrapper over [`PassiveReceiverChain::streaming`], kept
    /// for API compatibility: it allocates exactly one output vector (the
    /// sliced bits) and is bit-identical to pushing each sample through
    /// [`StreamingChain::push`] yourself. Hot paths that only need a few
    /// decision instants (e.g. the Monte-Carlo BER sampler) should use the
    /// streaming form directly and skip this vector too.
    pub fn demodulate(&self, envelope: &[f64], dt: Seconds) -> Vec<bool> {
        let mut chain = self.streaming(dt);
        envelope.iter().map(|&v| chain.push(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn braidio_chain_is_micropower() {
        let c = PassiveReceiverChain::braidio();
        let p = c.quiescent_power();
        assert!(
            p < Watts::from_microwatts(50.0),
            "passive chain must be tens of µW, got {p}"
        );
    }

    #[test]
    fn amplifier_extends_sensitivity() {
        // §3.2: bare detector ~-40 dBm; adding the amplifier buys real dB.
        let bare = PassiveReceiverChain::bare_tag();
        let amped = PassiveReceiverChain::braidio();
        let f = Hertz::from_khz(100.0);
        let s_bare = bare.sensitivity_dbm(f);
        let s_amped = amped.sensitivity_dbm(f);
        // 40 dB of voltage gain buys 20 dB of RF sensitivity in the
        // square-law detection region (envelope ∝ √swing).
        assert!(
            s_amped <= s_bare - 19.0,
            "amplifier should buy ~20 dB: bare {s_bare:.1}, amped {s_amped:.1}"
        );
        assert!(
            (s_bare - -40.0).abs() < 8.0,
            "bare sensitivity {s_bare:.1} dBm"
        );
    }

    #[test]
    fn demodulates_a_clean_ook_pattern() {
        let c = PassiveReceiverChain::braidio();
        let dt = Seconds::from_micros(0.1);
        // 100 kbps OOK: 10 µs per bit = 100 samples.
        let bits = [true, false, true, true, false, false, true, false];
        let mut env = Vec::new();
        for &b in &bits {
            let v = if b { 0.2 } else { 0.02 };
            env.extend(std::iter::repeat_n(v, 100));
        }
        let sliced = c.demodulate(&env, dt);
        // Sample each bit 3/4 of the way in (allow settling).
        let recovered: Vec<bool> = (0..bits.len()).map(|i| sliced[i * 100 + 75]).collect();
        assert_eq!(&recovered[1..], &bits[1..], "first bit may be in HP settle");
    }

    #[test]
    fn sub_threshold_input_is_silent() {
        let c = PassiveReceiverChain::braidio();
        let dt = Seconds::from_micros(0.1);
        let env = vec![0.001; 1000]; // constant, far below a data swing
        let sliced = c.demodulate(&env, dt);
        // After the turn-on transient settles, a static (DC) input must be
        // rejected by the high-pass: the slicer output shows no data edges
        // (the comparator may latch either state, but it cannot toggle).
        let edges = sliced[300..].windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(edges, 0, "static input produced {edges} edges");
    }

    #[test]
    fn swing_monotone_in_input() {
        let c = PassiveReceiverChain::braidio();
        let f = Hertz::from_khz(100.0);
        let mut prev = -1.0;
        for i in 1..20 {
            let v = 0.01 * i as f64;
            let s = c.baseband_swing(v, f);
            assert!(s >= prev, "swing must grow with input");
            prev = s;
        }
    }

    #[test]
    fn sensitivity_worsens_at_higher_baseband() {
        // Faster bitrates see less of the pump output (detector/amp
        // roll-off), so min detectable envelope grows with baseband rate.
        let c = PassiveReceiverChain::braidio();
        let v_slow = c.min_detectable_envelope(Hertz::from_khz(10.0));
        let v_fast = c.min_detectable_envelope(Hertz::from_mhz(1.0));
        assert!(v_fast >= v_slow, "fast {v_fast} vs slow {v_slow}");
    }
}
