//! SPDT antenna switch (SKY13267-class, Table 4).
//!
//! Braidio uses the switch for two things: selecting between the two
//! diversity receive antennas (§3.2), and — on the backscatter transmitter
//! side — toggling the antenna between its two reflection states, which *is*
//! the modulator.

use braidio_units::{Decibels, Seconds, Watts};

/// Which throw of the SPDT switch is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throw {
    /// Port 1 (e.g. diversity antenna 1, or tag state "reflect").
    Port1,
    /// Port 2 (e.g. diversity antenna 2, or tag state "absorb").
    Port2,
}

impl Throw {
    /// The other port.
    pub fn other(self) -> Throw {
        match self {
            Throw::Port1 => Throw::Port2,
            Throw::Port2 => Throw::Port1,
        }
    }
}

/// An SPDT RF switch.
#[derive(Debug, Clone, Copy)]
pub struct AntennaSwitch {
    /// Insertion loss through the selected port.
    pub insertion_loss: Decibels,
    /// Isolation to the unselected port.
    pub isolation: Decibels,
    /// Control-side power draw (SKY13267: "less than 10 µW", Table 4).
    pub power: Watts,
    /// Switching time between throws.
    pub switch_time: Seconds,
    state: Throw,
    transitions: u64,
}

impl AntennaSwitch {
    /// The SKY13267-class part on Braidio's board.
    pub fn sky13267() -> Self {
        AntennaSwitch {
            insertion_loss: Decibels::new(0.35),
            isolation: Decibels::new(22.0),
            power: Watts::from_microwatts(8.0),
            switch_time: Seconds::from_micros(0.5),
            state: Throw::Port1,
            transitions: 0,
        }
    }

    /// Currently selected throw.
    pub fn state(&self) -> Throw {
        self.state
    }

    /// Select a throw; counts a transition only when the state changes.
    pub fn select(&mut self, throw: Throw) {
        if self.state != throw {
            self.state = throw;
            self.transitions += 1;
        }
    }

    /// Toggle to the other throw.
    pub fn toggle(&mut self) {
        self.select(self.state.other());
    }

    /// How many state changes have occurred (each costs `switch_time`).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The gain seen by a signal entering via `port`: insertion loss if the
    /// port is selected, isolation otherwise.
    pub fn gain_for(&self, port: Throw) -> Decibels {
        if port == self.state {
            -self.insertion_loss
        } else {
            -self.isolation
        }
    }

    /// The maximum OOK toggle rate the switch supports, hertz.
    pub fn max_toggle_rate_hz(&self) -> f64 {
        0.5 / self.switch_time.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_and_toggle() {
        let mut s = AntennaSwitch::sky13267();
        assert_eq!(s.state(), Throw::Port1);
        s.toggle();
        assert_eq!(s.state(), Throw::Port2);
        s.select(Throw::Port2); // no-op
        assert_eq!(s.transitions(), 1);
        s.select(Throw::Port1);
        assert_eq!(s.transitions(), 2);
    }

    #[test]
    fn selected_port_sees_insertion_loss_only() {
        let s = AntennaSwitch::sky13267();
        assert_eq!(s.gain_for(Throw::Port1).db(), -0.35);
        assert_eq!(s.gain_for(Throw::Port2).db(), -22.0);
    }

    #[test]
    fn supports_1mbps_ook() {
        // 1 Mbps OOK needs 1 M toggles/s at worst; the switch must keep up.
        let s = AntennaSwitch::sky13267();
        assert!(s.max_toggle_rate_hz() >= 1e6);
    }

    #[test]
    fn micropower() {
        assert!(AntennaSwitch::sky13267().power < Watts::from_microwatts(10.0));
    }

    #[test]
    fn other_is_involutive() {
        assert_eq!(Throw::Port1.other().other(), Throw::Port1);
    }
}
