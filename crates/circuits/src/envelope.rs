//! Attack/decay envelope detector.
//!
//! The passive receiver extracts the envelope of the incident RF: a diode
//! charges a capacitor quickly (attack, through the diode's on-resistance)
//! and the capacitor discharges slowly through the bias resistor (decay).
//! The baseband Monte-Carlo demodulator in `braidio-phy` feeds OOK envelope
//! amplitudes through this model, so the detector's finite bandwidth — the
//! reason Braidio had to "reduce Cs and Cp to improve bitrate" on the
//! Moo/WISP front end (Table 4) — shows up as inter-symbol interference at
//! high bitrates.

use braidio_units::Seconds;

/// First-order attack/decay envelope follower.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeDetector {
    /// Charge time constant (diode conducting), seconds.
    pub attack: Seconds,
    /// Discharge time constant (diode blocking), seconds.
    pub decay: Seconds,
}

impl EnvelopeDetector {
    /// Create a detector; both time constants must be positive and the
    /// attack must not be slower than the decay.
    pub fn new(attack: Seconds, decay: Seconds) -> Self {
        assert!(attack.seconds() > 0.0 && decay.seconds() > 0.0);
        assert!(
            attack <= decay,
            "attack must be at least as fast as decay (diode charges faster than R discharges)"
        );
        EnvelopeDetector { attack, decay }
    }

    /// The original Moo/WISP front end, tuned for ~100 kbps downlink.
    pub fn wisp_stock() -> Self {
        EnvelopeDetector::new(Seconds::from_micros(0.4), Seconds::from_micros(4.0))
    }

    /// Braidio's re-tuned front end ("Reduced Cs and Cp to improve
    /// bitrate", Table 4) — fast enough for 1 Mbps OOK.
    pub fn braidio_fast() -> Self {
        EnvelopeDetector::new(Seconds::from_micros(0.08), Seconds::from_micros(0.8))
    }

    /// Streaming follower state for samples spaced `dt` apart.
    ///
    /// The per-sample coefficients are resolved once here; [`run`] is a
    /// thin batch wrapper over the returned state, so the two paths share
    /// one arithmetic definition and are bit-identical.
    ///
    /// [`run`]: EnvelopeDetector::run
    pub fn follower(&self, dt: Seconds) -> FollowerState {
        FollowerState {
            a_up: 1.0 - (-dt.seconds() / self.attack.seconds()).exp(),
            a_dn: 1.0 - (-dt.seconds() / self.decay.seconds()).exp(),
            y: 0.0,
        }
    }

    /// Run the follower over envelope samples spaced `dt` apart.
    ///
    /// Batch wrapper over [`EnvelopeDetector::follower`]; allocates only
    /// the output vector.
    pub fn run(&self, samples: &[f64], dt: Seconds) -> Vec<f64> {
        let mut state = self.follower(dt);
        samples.iter().map(|&x| state.push(x)).collect()
    }

    /// Approximate -3 dB envelope bandwidth in hertz, limited by the slower
    /// (decay) time constant.
    pub fn bandwidth_hz(&self) -> f64 {
        1.0 / (2.0 * core::f64::consts::PI * self.decay.seconds())
    }
}

/// O(1) streaming state of an attack/decay follower: the current capacitor
/// voltage plus the two precomputed per-sample blend coefficients.
///
/// Obtained from [`EnvelopeDetector::follower`]; one [`push`] per envelope
/// sample. This is the follower stage of the fused demodulation pipeline
/// ([`crate::streaming::StreamingChain`]).
///
/// [`push`]: FollowerState::push
#[derive(Debug, Clone, Copy)]
pub struct FollowerState {
    a_up: f64,
    a_dn: f64,
    y: f64,
}

impl FollowerState {
    /// Advance the follower by one sample and return its output.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        let alpha = if x > self.y { self.a_up } else { self.a_dn };
        self.y += alpha * (x - self.y);
        self.y
    }

    /// The follower's current output (capacitor voltage).
    pub fn output(&self) -> f64 {
        self.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(det: &EnvelopeDetector, dt: Seconds, n: usize) -> Vec<f64> {
        let samples = vec![1.0; n];
        det.run(&samples, dt)
    }

    #[test]
    fn tracks_step_up() {
        let det = EnvelopeDetector::braidio_fast();
        let out = step(&det, Seconds::from_micros(0.01), 200);
        assert!(out[199] > 0.9, "final {}", out[199]);
        assert!(out[0] < 0.2, "first {}", out[0]);
    }

    #[test]
    fn decays_after_release() {
        let det = EnvelopeDetector::braidio_fast();
        let mut samples = vec![1.0; 200];
        samples.extend(vec![0.0; 200]);
        let out = det.run(&samples, Seconds::from_micros(0.01));
        assert!(out[399] < 0.2, "final {}", out[399]);
        // Decay is slower than attack: value right after release is high.
        assert!(out[210] > 0.5);
    }

    #[test]
    fn fast_detector_resolves_1mbps_symbols() {
        // Alternate 1 µs on / 1 µs off symbols; the fast detector must show
        // a clear high/low contrast mid-symbol.
        let det = EnvelopeDetector::braidio_fast();
        let dt = Seconds::from_micros(0.02);
        let per_symbol = 50; // 1 µs
        let mut samples = Vec::new();
        for s in 0..20 {
            let level = if s % 2 == 0 { 1.0 } else { 0.0 };
            samples.extend(std::iter::repeat_n(level, per_symbol));
        }
        let out = det.run(&samples, dt);
        // Compare mid-symbol values of late symbols.
        let hi = out[16 * per_symbol + per_symbol - 1];
        let lo = out[17 * per_symbol + per_symbol - 1];
        assert!(hi - lo > 0.5, "contrast {} vs {}", hi, lo);
    }

    #[test]
    fn slow_detector_smears_1mbps_symbols() {
        // The stock WISP detector cannot follow 1 Mbps: contrast collapses.
        let det = EnvelopeDetector::wisp_stock();
        let dt = Seconds::from_micros(0.02);
        let per_symbol = 50;
        let mut samples = Vec::new();
        for s in 0..20 {
            let level = if s % 2 == 0 { 1.0 } else { 0.0 };
            samples.extend(std::iter::repeat_n(level, per_symbol));
        }
        let out = det.run(&samples, dt);
        let hi = out[16 * per_symbol + per_symbol - 1];
        let lo = out[17 * per_symbol + per_symbol - 1];
        let fast_contrast = 0.5;
        assert!(
            hi - lo < fast_contrast,
            "stock detector should smear: {} vs {}",
            hi,
            lo
        );
    }

    #[test]
    fn bandwidth_ordering() {
        assert!(
            EnvelopeDetector::braidio_fast().bandwidth_hz()
                > EnvelopeDetector::wisp_stock().bandwidth_hz()
        );
    }

    #[test]
    #[should_panic(expected = "attack must be at least as fast")]
    fn attack_slower_than_decay_rejected() {
        let _ = EnvelopeDetector::new(Seconds::from_micros(10.0), Seconds::from_micros(1.0));
    }
}
