//! RF energy harvesting with the charge-pump front end.
//!
//! Braidio's passive receiver is the same circuit a Moo/WISP tag uses to
//! *power itself* — the lineage the paper builds on (Table 4: "Passive
//! Receiver: Moo/WISP"). This module closes that loop: given an incident
//! carrier, how much DC power can the pump deliver, and at what distance
//! can a tag-mode Braidio run its backscatter transmitter on harvested
//! energy alone (battery-free operation — the natural extension the
//! backscatter literature the paper cites is built around)?

use crate::charge_pump::DicksonChargePump;
use braidio_rfsim::{LinkBudget, LinkKind};
use braidio_units::{Meters, Watts};

/// An RF harvester: matching network + charge pump + regulator.
#[derive(Debug, Clone, Copy)]
pub struct Harvester {
    /// The rectifying pump.
    pub pump: DicksonChargePump,
    /// RF-to-DC conversion efficiency at strong input (well above the
    /// diode threshold). WISP-class front ends reach ~30 %.
    pub peak_efficiency: f64,
    /// Minimum input power for the pump to start up at all (cold-start
    /// threshold; ~-16 dBm for Karthaus-Fischer-style transponders,
    /// ref. \[33\]).
    pub sensitivity: Watts,
}

impl Harvester {
    /// A WISP-class harvester.
    pub fn wisp() -> Self {
        Harvester {
            pump: DicksonChargePump::multi_stage(4),
            peak_efficiency: 0.3,
            sensitivity: Watts::from_dbm(-16.0),
        }
    }

    /// Conversion efficiency at a given input power: ramps with input
    /// (square-law region wastes proportionally more in the diodes) and
    /// saturates at `peak_efficiency`.
    pub fn efficiency_at(&self, p_in: Watts) -> f64 {
        if p_in < self.sensitivity {
            return 0.0;
        }
        // Efficiency grows with headroom above sensitivity, saturating
        // after ~10 dB — the standard measured shape for UHF rectifiers.
        let headroom_db = 10.0 * (p_in / self.sensitivity).log10();
        self.peak_efficiency * (headroom_db / 10.0).min(1.0)
    }

    /// Harvested DC power for an incident RF power.
    pub fn harvested(&self, p_in: Watts) -> Watts {
        p_in * self.efficiency_at(p_in)
    }

    /// The farthest distance at which the harvester can continuously power
    /// a load of `load` watts from a carrier of `carrier_rf`, under the
    /// given link budget. `None` if even the near field cannot.
    pub fn powered_range(
        &self,
        budget: &LinkBudget,
        carrier_rf: Watts,
        load: Watts,
    ) -> Option<Meters> {
        let enough = |d: f64| {
            let p_in = budget.received_power(LinkKind::PassiveRx, carrier_rf, Meters::new(d));
            self.harvested(p_in) >= load
        };
        if !enough(0.05) {
            return None;
        }
        let (mut lo, mut hi) = (0.05f64, 50.0f64);
        if enough(hi) {
            return Some(Meters::new(hi));
        }
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if enough(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Meters::new(0.5 * (lo + hi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_sensitivity_harvests_nothing() {
        let h = Harvester::wisp();
        assert_eq!(h.harvested(Watts::from_dbm(-20.0)), Watts::ZERO);
    }

    #[test]
    fn efficiency_saturates_at_peak() {
        let h = Harvester::wisp();
        assert!((h.efficiency_at(Watts::from_dbm(0.0)) - 0.3).abs() < 1e-12);
        let mid = h.efficiency_at(Watts::from_dbm(-11.0));
        assert!(mid > 0.0 && mid < 0.3, "mid-range efficiency {mid}");
    }

    #[test]
    fn harvested_power_monotone() {
        let h = Harvester::wisp();
        let mut prev = Watts::ZERO;
        for dbm in [-18.0, -15.0, -12.0, -8.0, -4.0, 0.0, 4.0] {
            let p = h.harvested(Watts::from_dbm(dbm));
            assert!(p >= prev, "at {dbm} dBm");
            prev = p;
        }
    }

    #[test]
    fn tag_mode_runs_battery_free_close_in() {
        // The backscatter transmitter (switch toggling + sleep MCU) draws
        // ~36 µW; a 13 dBm carrier must power it at tens of centimeters —
        // the WISP operating envelope.
        let h = Harvester::wisp();
        let budget = LinkBudget::default();
        let range = h
            .powered_range(
                &budget,
                Watts::from_dbm(13.0),
                Watts::from_microwatts(36.38),
            )
            .expect("powered somewhere");
        assert!(
            range.meters() > 0.1 && range.meters() < 2.0,
            "battery-free range {range}"
        );
    }

    #[test]
    fn heavier_loads_have_shorter_powered_range() {
        let h = Harvester::wisp();
        let budget = LinkBudget::default();
        let carrier = Watts::from_dbm(13.0);
        let light = h
            .powered_range(&budget, carrier, Watts::from_microwatts(10.0))
            .unwrap();
        let heavy = h
            .powered_range(&budget, carrier, Watts::from_microwatts(100.0))
            .unwrap();
        assert!(light > heavy);
    }

    #[test]
    fn mcu_active_cannot_run_battery_free_far() {
        // The 6.6 mW active MCU is far beyond harvest range at any
        // realistic distance — why Braidio keeps a battery at the tag.
        let h = Harvester::wisp();
        let budget = LinkBudget::default();
        let r = h.powered_range(&budget, Watts::from_dbm(13.0), Watts::from_milliwatts(6.6));
        assert!(r.is_none() || r.unwrap().meters() < 0.1, "{r:?}");
    }
}
