//! Single-pole RC filters.
//!
//! The high-pass is Braidio's key self-interference trick (§3.1): a static
//! self-interference channel presents as a DC offset at the charge-pump
//! output, and even a dynamic channel (coherence time ~milliseconds) only
//! creates components below ~1 kHz — so a high-pass with a sub-kHz corner
//! removes the self-interference while passing the 10 kHz–1 MHz backscatter
//! baseband untouched.

use braidio_units::{Hertz, Seconds};

/// A discrete-time single-pole high-pass filter.
#[derive(Debug, Clone, Copy)]
pub struct HighPass {
    cutoff: Hertz,
}

impl HighPass {
    /// High-pass with the given -3 dB cutoff.
    pub fn new(cutoff: Hertz) -> Self {
        assert!(cutoff.is_physical(), "cutoff must be positive");
        HighPass { cutoff }
    }

    /// From R (ohms) and C (farads): `f_c = 1/(2πRC)`.
    pub fn from_rc(r: f64, c: f64) -> Self {
        HighPass::new(Hertz::new(1.0 / (2.0 * core::f64::consts::PI * r * c)))
    }

    /// Braidio's self-interference rejection corner: 1 kHz, comfortably
    /// above channel-dynamics components and below the 10 kbps baseband.
    pub fn braidio_si_reject() -> Self {
        HighPass::new(Hertz::from_khz(1.0))
    }

    /// The configured cutoff.
    pub fn cutoff(&self) -> Hertz {
        self.cutoff
    }

    /// Streaming filter state for samples spaced `dt` apart.
    ///
    /// [`run`] is a thin batch wrapper over the returned state, so the two
    /// paths share one arithmetic definition and are bit-identical. The
    /// state seeds its previous-input memory from the first pushed sample,
    /// matching the batch initialization (first output is exactly zero).
    ///
    /// [`run`]: HighPass::run
    pub fn stream(&self, dt: Seconds) -> HighPassState {
        let rc = 1.0 / (2.0 * core::f64::consts::PI * self.cutoff.hz());
        HighPassState {
            alpha: rc / (rc + dt.seconds()),
            y: 0.0,
            x_prev: None,
        }
    }

    /// Filter a sample sequence spaced `dt` apart.
    ///
    /// Batch wrapper over [`HighPass::stream`]; allocates only the output
    /// vector.
    pub fn run(&self, samples: &[f64], dt: Seconds) -> Vec<f64> {
        let mut state = self.stream(dt);
        samples.iter().map(|&x| state.push(x)).collect()
    }

    /// Magnitude response at frequency `f` (linear, 0..1).
    pub fn magnitude_at(&self, f: Hertz) -> f64 {
        let r = f / self.cutoff;
        r / (1.0 + r * r).sqrt()
    }
}

/// O(1) streaming state of a single-pole high-pass: the previous input,
/// the current output, and the precomputed pole coefficient.
///
/// Obtained from [`HighPass::stream`]; one [`push`] per sample. This is
/// the DC-rejection stage of the fused demodulation pipeline
/// ([`crate::streaming::StreamingChain`]).
///
/// [`push`]: HighPassState::push
#[derive(Debug, Clone, Copy)]
pub struct HighPassState {
    alpha: f64,
    y: f64,
    x_prev: Option<f64>,
}

impl HighPassState {
    /// Advance the filter by one sample and return its output.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        let x_prev = self.x_prev.unwrap_or(x);
        self.y = self.alpha * (self.y + x - x_prev);
        self.x_prev = Some(x);
        self.y
    }
}

/// A discrete-time single-pole low-pass filter.
#[derive(Debug, Clone, Copy)]
pub struct LowPass {
    cutoff: Hertz,
}

impl LowPass {
    /// Low-pass with the given -3 dB cutoff.
    pub fn new(cutoff: Hertz) -> Self {
        assert!(cutoff.is_physical(), "cutoff must be positive");
        LowPass { cutoff }
    }

    /// The configured cutoff.
    pub fn cutoff(&self) -> Hertz {
        self.cutoff
    }

    /// Filter a sample sequence spaced `dt` apart.
    pub fn run(&self, samples: &[f64], dt: Seconds) -> Vec<f64> {
        let rc = 1.0 / (2.0 * core::f64::consts::PI * self.cutoff.hz());
        let alpha = dt.seconds() / (rc + dt.seconds());
        let mut y = 0.0f64;
        samples
            .iter()
            .map(|&x| {
                y += alpha * (x - y);
                y
            })
            .collect()
    }

    /// Magnitude response at frequency `f` (linear, 0..1).
    pub fn magnitude_at(&self, f: Hertz) -> f64 {
        let r = f / self.cutoff;
        1.0 / (1.0 + r * r).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(f_hz: f64, dt: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * core::f64::consts::PI * f_hz * dt * i as f64).sin())
            .collect()
    }

    fn rms_tail(v: &[f64]) -> f64 {
        let tail = &v[v.len() / 2..];
        (tail.iter().map(|x| x * x).sum::<f64>() / tail.len() as f64).sqrt()
    }

    #[test]
    fn highpass_blocks_dc() {
        let hp = HighPass::braidio_si_reject();
        let samples = vec![5.0; 4000];
        let out = hp.run(&samples, Seconds::from_micros(10.0));
        assert!(
            out.last().unwrap().abs() < 0.05,
            "residual {}",
            out.last().unwrap()
        );
    }

    #[test]
    fn highpass_passes_baseband() {
        // 100 kHz backscatter baseband through a 1 kHz corner: nearly
        // untouched.
        let hp = HighPass::braidio_si_reject();
        let dt = 1e-7;
        let x = sine(100e3, dt, 20_000);
        let y = hp.run(&x, Seconds::new(dt));
        let gain = rms_tail(&y) / rms_tail(&x);
        assert!(gain > 0.98, "gain {gain}");
    }

    #[test]
    fn highpass_attenuates_channel_dynamics() {
        // ~100 Hz channel-dynamics component (coherence-time leakage) is cut
        // by ~10x at a 1 kHz corner.
        let hp = HighPass::braidio_si_reject();
        let dt = 1e-5;
        let x = sine(100.0, dt, 200_000);
        let y = hp.run(&x, Seconds::new(dt));
        let gain = rms_tail(&y) / rms_tail(&x);
        assert!(gain < 0.15, "gain {gain}");
    }

    #[test]
    fn highpass_magnitude_at_cutoff() {
        let hp = HighPass::new(Hertz::from_khz(1.0));
        let m = hp.magnitude_at(Hertz::from_khz(1.0));
        assert!((m - core::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn from_rc_matches_formula() {
        // 160 kΩ, 1 nF -> ~1 kHz.
        let hp = HighPass::from_rc(159_155.0, 1e-9);
        assert!((hp.cutoff().hz() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn lowpass_passes_dc_blocks_fast() {
        let lp = LowPass::new(Hertz::from_khz(1.0));
        let dc = vec![2.0; 50_000];
        let out = lp.run(&dc, Seconds::from_micros(10.0));
        assert!((out.last().unwrap() - 2.0).abs() < 0.01);

        let dt = 1e-6;
        let fast = sine(100e3, dt, 100_000);
        let y = lp.run(&fast, Seconds::new(dt));
        assert!(rms_tail(&y) / rms_tail(&fast) < 0.02);
    }

    #[test]
    fn lowpass_magnitude_at_cutoff() {
        let lp = LowPass::new(Hertz::from_khz(10.0));
        let m = lp.magnitude_at(Hertz::from_khz(10.0));
        assert!((m - core::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn complementary_at_extremes() {
        let hp = HighPass::new(Hertz::from_khz(1.0));
        let lp = LowPass::new(Hertz::from_khz(1.0));
        assert!(hp.magnitude_at(Hertz::new(1.0)) < 0.01);
        assert!(lp.magnitude_at(Hertz::new(1.0)) > 0.99);
        assert!(hp.magnitude_at(Hertz::from_mhz(1.0)) > 0.99);
        assert!(lp.magnitude_at(Hertz::from_mhz(1.0)) < 0.01);
    }
}
