//! Microcontroller power model (ATMEGA328P-class, Table 4).
//!
//! The controller shows up in every mode's power budget: it clocks the
//! backscatter switch, samples the comparator, frames packets and runs the
//! offload algorithm. Table 4: "consumes only 2 mA @ 8 MHz".

use braidio_units::{Joules, Seconds, Watts};

/// MCU operating states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McuState {
    /// Full-speed run (8 MHz).
    Active,
    /// Clocked-down idle, peripherals alive.
    Idle,
    /// Power-down sleep, watchdog only.
    Sleep,
}

/// An MCU with per-state draw and a cycle-cost model for the radio tasks.
#[derive(Debug, Clone, Copy)]
pub struct Mcu {
    /// Supply voltage.
    pub vcc: f64,
    /// Active-state current, amps.
    pub i_active: f64,
    /// Idle-state current, amps.
    pub i_idle: f64,
    /// Sleep current, amps.
    pub i_sleep: f64,
    /// Core clock, Hz.
    pub clock_hz: f64,
}

impl Mcu {
    /// The ATMEGA328P at 3.3 V / 8 MHz.
    pub fn atmega328p() -> Self {
        Mcu {
            vcc: 3.3,
            i_active: 2.0e-3,
            i_idle: 0.5e-3,
            i_sleep: 4.5e-6,
            clock_hz: 8e6,
        }
    }

    /// Power draw in a state.
    pub fn draw(&self, state: McuState) -> Watts {
        let i = match state {
            McuState::Active => self.i_active,
            McuState::Idle => self.i_idle,
            McuState::Sleep => self.i_sleep,
        };
        Watts::new(self.vcc * i)
    }

    /// Energy for `cycles` of active computation.
    pub fn compute_energy(&self, cycles: f64) -> Joules {
        self.draw(McuState::Active) * Seconds::new(cycles / self.clock_hz)
    }

    /// Per-bit processing energy when the radio work costs
    /// `cycles_per_bit` cycles (toggling the tag switch: ~8 cycles/bit;
    /// framing + CRC: ~30 cycles/bit).
    pub fn energy_per_bit(&self, cycles_per_bit: f64) -> Joules {
        self.compute_energy(cycles_per_bit)
    }

    /// The fastest bitrate this MCU can service at `cycles_per_bit`.
    pub fn max_bitrate(&self, cycles_per_bit: f64) -> f64 {
        self.clock_hz / cycles_per_bit
    }
}

impl Default for Mcu {
    fn default() -> Self {
        Mcu::atmega328p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_quote_2ma_at_8mhz() {
        let m = Mcu::atmega328p();
        assert!((m.draw(McuState::Active).milliwatts() - 6.6).abs() < 0.01);
    }

    #[test]
    fn state_ordering() {
        let m = Mcu::atmega328p();
        assert!(m.draw(McuState::Active) > m.draw(McuState::Idle));
        assert!(m.draw(McuState::Idle) > m.draw(McuState::Sleep));
        // Sleep is µW-class — compatible with tag-mode budgets.
        assert!(m.draw(McuState::Sleep) < Watts::from_microwatts(20.0));
    }

    #[test]
    fn can_toggle_backscatter_at_1mbps() {
        // 8 cycles/bit at 8 MHz = 1 Mbps: exactly the top Braidio rate.
        let m = Mcu::atmega328p();
        assert!(m.max_bitrate(8.0) >= 1e6);
        // Full framing at 30 cycles/bit caps out near 266 kbps — which is
        // why the 1 Mbps path uses hardware shift-out, not bit-banging.
        assert!(m.max_bitrate(30.0) < 1e6);
    }

    #[test]
    fn per_bit_energy_scale() {
        // 8 cycles/bit: 6.6 mW × 1 µs = 6.6 nJ... per 8 cycles at 8 MHz.
        let m = Mcu::atmega328p();
        let e = m.energy_per_bit(8.0);
        assert!((e.joules() - 6.6e-9).abs() < 1e-11, "{e}");
    }

    #[test]
    fn compute_energy_linear_in_cycles() {
        let m = Mcu::atmega328p();
        let one = m.compute_energy(1000.0);
        let two = m.compute_energy(2000.0);
        assert!((two.joules() / one.joules() - 2.0).abs() < 1e-12);
    }
}
