//! Piecewise-linear Schottky diode model.
//!
//! The charge pump and envelope detector both hinge on diode rectification.
//! A full Shockley exponential makes explicit-Euler transient simulation
//! stiff, so we use the standard piecewise-linear (PWL) companion model:
//! an ideal switch with forward threshold `v_f` and on-resistance `r_on`,
//! plus a small reverse leakage conductance. For zero-bias Schottky
//! detector diodes (HSMS-285x class, the parts used on Moo/WISP tags) the
//! threshold is tens of millivolts, which is what lets a 1 V RF input pump
//! up to nearly 2 V DC (Fig. 3b).

/// Piecewise-linear diode.
#[derive(Debug, Clone, Copy)]
pub struct Diode {
    /// Forward voltage threshold, volts.
    pub v_f: f64,
    /// On-state series resistance, ohms.
    pub r_on: f64,
    /// Reverse (off-state) conductance, siemens.
    pub g_leak: f64,
}

impl Diode {
    /// A zero-bias RF Schottky detector diode (HSMS-285x class).
    pub fn schottky_detector() -> Self {
        Diode {
            v_f: 0.02,
            r_on: 25.0,
            g_leak: 1e-9,
        }
    }

    /// A general-purpose Schottky (BAT54 class) with a higher threshold.
    pub fn schottky_general() -> Self {
        Diode {
            v_f: 0.24,
            r_on: 5.0,
            g_leak: 1e-10,
        }
    }

    /// Anode→cathode current for a forward voltage `v` (volts).
    pub fn current(&self, v: f64) -> f64 {
        if v > self.v_f {
            (v - self.v_f) / self.r_on
        } else {
            self.g_leak * (v - self.v_f).min(0.0)
        }
    }

    /// True if the diode is conducting at voltage `v`.
    pub fn is_conducting(&self, v: f64) -> bool {
        v > self.v_f
    }
}

impl Default for Diode {
    fn default() -> Self {
        Diode::schottky_detector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_reverse() {
        let d = Diode::schottky_detector();
        let i = d.current(-1.0);
        assert!(i <= 0.0 && i.abs() < 1e-8, "reverse current {i}");
    }

    #[test]
    fn conducts_forward() {
        let d = Diode::schottky_detector();
        let i = d.current(0.5);
        assert!((i - (0.5 - 0.02) / 25.0).abs() < 1e-12);
        assert!(d.is_conducting(0.5));
        assert!(!d.is_conducting(0.01));
    }

    #[test]
    fn current_is_monotonic() {
        let d = Diode::default();
        let mut prev = f64::MIN;
        for i in 0..200 {
            let v = -1.0 + 0.015 * i as f64;
            let cur = d.current(v);
            assert!(cur >= prev, "non-monotonic at v={v}");
            prev = cur;
        }
    }

    #[test]
    fn continuous_at_threshold() {
        let d = Diode::default();
        let below = d.current(d.v_f - 1e-9);
        let above = d.current(d.v_f + 1e-9);
        assert!((above - below).abs() < 1e-9);
    }

    #[test]
    fn detector_threshold_below_general() {
        assert!(Diode::schottky_detector().v_f < Diode::schottky_general().v_f);
    }
}
