//! Carrier emitter model (SI4432-class, Table 4).
//!
//! The SI4432 is the programmable carrier source for the passive-receiver
//! downlink and the backscatter-mode reader carrier. Its DC draw is the
//! 125 mW that dominates whichever endpoint owns the carrier; this module
//! models the draw as a function of the programmed RF output so ablations
//! can ask "what if the carrier ran at 10 dBm instead of 13?".

use braidio_units::{Decibels, Seconds, Watts};

/// A programmable CW/OOK carrier source.
#[derive(Debug, Clone, Copy)]
pub struct CarrierEmitter {
    /// Synthesizer + crystal + bias overhead (draw at zero output power).
    pub base_draw: Watts,
    /// Power-amplifier drain efficiency at full output.
    pub pa_efficiency: f64,
    /// Maximum programmable RF output.
    pub max_output: Watts,
    /// Time from sleep to a stable carrier (PLL settle).
    pub startup: Seconds,
}

impl CarrierEmitter {
    /// The SI4432 as configured on Braidio: 13 dBm output, 125 mW total
    /// draw, ~0.8 ms PLL settle.
    pub fn si4432() -> Self {
        // 125 mW total at 13 dBm (20 mW RF): PA drain ~= 20/eff; with
        // eff = 0.2 the PA draws 100 mW and the synthesizer ~25 mW.
        CarrierEmitter {
            base_draw: Watts::from_milliwatts(25.0),
            pa_efficiency: 0.2,
            max_output: Watts::from_dbm(20.0),
            startup: Seconds::from_millis(0.8),
        }
    }

    /// DC draw while emitting `rf_out` of RF.
    pub fn draw_at(&self, rf_out: Watts) -> Watts {
        assert!(
            rf_out <= self.max_output,
            "requested {rf_out} above the part's {} limit",
            self.max_output
        );
        self.base_draw + rf_out / self.pa_efficiency
    }

    /// DC draw at a dBm setting.
    pub fn draw_at_dbm(&self, dbm: f64) -> Watts {
        self.draw_at(Watts::from_dbm(dbm))
    }

    /// Energy to bring the carrier up from sleep (charged on every
    /// mode switch that turns a carrier on).
    pub fn startup_energy(&self) -> braidio_units::Joules {
        self.draw_at(Watts::ZERO) * self.startup
    }

    /// How much DC power a back-off of `backoff` dB from 13 dBm saves.
    pub fn backoff_saving(&self, backoff: Decibels) -> Watts {
        self.draw_at_dbm(13.0) - self.draw_at_dbm(13.0 - backoff.db())
    }
}

impl Default for CarrierEmitter {
    fn default() -> Self {
        CarrierEmitter::si4432()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si4432_draws_125mw_at_13dbm() {
        let c = CarrierEmitter::si4432();
        let d = c.draw_at_dbm(13.0);
        assert!((d.milliwatts() - 125.0).abs() < 1.0, "draw {d}");
    }

    #[test]
    fn draw_monotone_in_output() {
        let c = CarrierEmitter::si4432();
        let mut prev = Watts::ZERO;
        for dbm in [-10.0, 0.0, 5.0, 10.0, 13.0, 17.0, 20.0] {
            let d = c.draw_at_dbm(dbm);
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn base_draw_at_zero_output() {
        let c = CarrierEmitter::si4432();
        assert_eq!(c.draw_at(Watts::ZERO), c.base_draw);
    }

    #[test]
    fn backoff_saves_real_power() {
        let c = CarrierEmitter::si4432();
        // 3 dB backoff halves the RF, saving ~50 mW of PA drain.
        let saved = c.backoff_saving(Decibels::new(3.0));
        assert!((saved.milliwatts() - 49.9).abs() < 1.0, "saved {saved}");
    }

    #[test]
    fn startup_energy_is_small() {
        // Sub-25 µJ: far below the Table 5 backscatter switch entry, which
        // also includes MCU coordination.
        let e = CarrierEmitter::si4432().startup_energy();
        assert!(e.joules() < 25e-6, "startup {e}");
    }

    #[test]
    #[should_panic(expected = "above the part")]
    fn over_limit_rejected() {
        let _ = CarrierEmitter::si4432().draw_at_dbm(25.0);
    }
}
