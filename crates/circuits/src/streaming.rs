//! The fused, zero-allocation streaming form of the passive receive chain.
//!
//! [`PassiveReceiverChain::demodulate`] used to materialize one full-length
//! vector per stage (pumped, followed, high-passed, amplified) before
//! slicing — at 1 kbps and 20 MS/s that is ~82 M `f64` per Monte-Carlo
//! chunk, gigabytes of allocation and memory traffic where a handful of
//! state variables suffice. [`StreamingChain`] runs the same five stages —
//! matching boost → charge-pump nonlinearity → envelope follower →
//! high-pass → amplifier → comparator — one *sample* at a time, carrying
//! only O(1) state.
//!
//! ## Why fusion is bit-identical
//!
//! Every stage is a first-order recurrence: its output for sample `i`
//! depends only on its own state after sample `i-1` and its input for
//! sample `i`. Evaluating the stages sample-major instead of stage-major
//! therefore computes the *same* dataflow graph for every output value, in
//! the same IEEE-754 operations — only the schedule changes, never an
//! operand. The batch stage methods ([`EnvelopeDetector::run`],
//! [`HighPass::run`], [`Comparator::run`]) are themselves thin wrappers
//! over the streaming states, so there is a single arithmetic definition
//! of each stage and `chain.demodulate(env, dt)[i] ==
//! chain.streaming(dt).push-fold(env)[i]` exactly, for every sample —
//! asserted bit-for-bit by the property tests in
//! `crates/circuits/tests/proptests.rs`.
//!
//! [`EnvelopeDetector::run`]: crate::envelope::EnvelopeDetector::run
//! [`HighPass::run`]: crate::filter::HighPass::run
//! [`Comparator::run`]: crate::comparator::Comparator::run

use crate::chain::PassiveReceiverChain;
use crate::charge_pump::DicksonChargePump;
use crate::comparator::SlicerState;
use crate::envelope::FollowerState;
use crate::filter::HighPassState;
use braidio_units::Seconds;

/// The passive receive chain as a per-sample state machine.
///
/// Built from a [`PassiveReceiverChain`] and a sample interval via
/// [`PassiveReceiverChain::streaming`]; one [`push`] per antenna-referred
/// envelope sample yields the comparator's latched decision after that
/// sample. Total state: two follower coefficients plus one voltage, one
/// high-pass coefficient plus two memories, the resolved amplifier gain,
/// and one latched bit — no allocation anywhere on the push path.
///
/// [`push`]: StreamingChain::push
#[derive(Debug, Clone, Copy)]
pub struct StreamingChain {
    pump: DicksonChargePump,
    matching_gain: f64,
    follower: FollowerState,
    highpass: HighPassState,
    /// Amplifier gain resolved from dB to a linear factor once.
    gain: f64,
    rail: f64,
    slicer: SlicerState,
}

impl StreamingChain {
    /// Streaming state for `chain` at sample interval `dt`.
    ///
    /// The comparator is re-centred on a zero threshold exactly as the
    /// batch pipeline does (the high-pass centres the signal).
    pub fn new(chain: &PassiveReceiverChain, dt: Seconds) -> Self {
        StreamingChain {
            pump: chain.pump,
            matching_gain: chain.matching_gain,
            follower: chain.detector.follower(dt),
            highpass: chain.highpass.stream(dt),
            gain: chain.amplifier.gain.amplitude(),
            rail: chain.amplifier.rail,
            slicer: chain.comparator.with_threshold(0.0).slicer(),
        }
    }

    /// Feed one antenna-referred envelope sample through all five stages
    /// and return the comparator's decision after it.
    #[inline]
    pub fn push(&mut self, v: f64) -> bool {
        // Matching boost + static pump nonlinearity.
        let pumped = self.pump.small_signal_output(v * self.matching_gain);
        // Detector dynamics (finite attack/decay).
        let followed = self.follower.push(pumped);
        // DC / self-interference rejection.
        let hp = self.highpass.push(followed);
        // Amplify (rail-clipped) and slice around zero.
        let amped = (hp * self.gain).clamp(-self.rail, self.rail);
        self.slicer.push(amped)
    }

    /// The comparator's current latched decision.
    pub fn output(&self) -> bool {
        self.slicer.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stage-major reference: what the seed implementation of
    /// `demodulate` computed, stage vectors and all.
    fn batch_reference(chain: &PassiveReceiverChain, envelope: &[f64], dt: Seconds) -> Vec<bool> {
        let pumped: Vec<f64> = envelope
            .iter()
            .map(|&v| chain.pump.small_signal_output(v * chain.matching_gain))
            .collect();
        let followed = chain.detector.run(&pumped, dt);
        let hp = chain.highpass.run(&followed, dt);
        let amped = chain.amplifier.run(&hp);
        chain.comparator.with_threshold(0.0).run(&amped)
    }

    #[test]
    fn matches_batch_reference_bit_for_bit() {
        let chain = PassiveReceiverChain::braidio();
        let dt = Seconds::from_micros(0.1);
        // A deliberately nasty waveform: clean OOK, a DC shelf, ramps.
        let mut env = Vec::new();
        for i in 0..4000usize {
            let bit = (i / 100) % 2 == 0;
            let wobble = 0.01 * ((i % 17) as f64 - 8.0) / 8.0;
            env.push(if bit { 0.2 } else { 0.02 } + wobble.abs());
        }
        env.extend(std::iter::repeat_n(0.1, 500));
        let reference = batch_reference(&chain, &env, dt);
        let mut s = StreamingChain::new(&chain, dt);
        for (i, &v) in env.iter().enumerate() {
            assert_eq!(s.push(v), reference[i], "sample {i}");
            assert_eq!(s.output(), reference[i], "output() after sample {i}");
        }
    }

    #[test]
    fn state_is_copy_and_restartable() {
        let chain = PassiveReceiverChain::braidio();
        let dt = Seconds::from_micros(0.1);
        let fresh = StreamingChain::new(&chain, dt);
        let mut a = fresh;
        let mut b = fresh;
        for i in 0..1000 {
            let v = if (i / 50) % 2 == 0 { 0.2 } else { 0.0 };
            assert_eq!(a.push(v), b.push(v));
        }
    }
}
