//! Vendored stand-in for the subset of the `criterion` API used by this
//! workspace's benches.
//!
//! The build environment has no crates.io access, so this crate provides a
//! compatible, dependency-free measurement harness: [`Criterion`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`]. It reports median / mean / p95 per-iteration times
//! on stdout instead of criterion's HTML + statistics machinery, and honours
//! `--bench` (ignored) and a substring filter argument so `cargo bench foo`
//! behaves as expected.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Substring filter from the CLI (run only matching benchmarks).
    filter: Option<String>,
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Smoke-test mode (`--test`, as passed by `cargo bench -- --test` and
    /// real criterion): run every routine exactly once, skip measurement.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter strings.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let test_mode = std::env::args().skip(1).any(|a| a == "--test");
        Criterion {
            filter,
            measurement: Duration::from_millis(300),
            test_mode,
        }
    }
}

impl Criterion {
    /// Run one benchmark if it passes the CLI filter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            measurement: self.measurement,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("{name:<40} ok (test mode: 1 iteration)");
        } else {
            b.report(name);
        }
        self
    }
}

/// Measures a closure's per-iteration time.
pub struct Bencher {
    samples: Vec<f64>,
    measurement: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, repeating it until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // Smoke mode: prove the routine runs without panicking, once.
            black_box(routine());
            return;
        }
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ≥ ~1 ms, so timer overhead stays < 0.1%.
        let mut batch = 1usize;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        // Measurement: collect per-batch samples. Slow routines (a single
        // iteration blowing far past the whole measurement budget) settle
        // for three samples, like real criterion's reduced sample counts.
        let deadline = Instant::now() + self.measurement;
        let mut min_samples = 5usize;
        while Instant::now() < deadline || self.samples.len() < min_samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            self.samples.push(elapsed.as_secs_f64() / batch as f64);
            if elapsed > 10 * self.measurement {
                min_samples = 3;
            }
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let p95 = s[((s.len() as f64 * 0.95) as usize).saturating_sub(1)];
        println!(
            "{name:<40} median {:>12} mean {:>12} p95 {:>12} ({} samples)",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(p95),
            s.len()
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// Group benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            measurement: Duration::from_millis(5),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(3u64).wrapping_mul(7));
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
            measurement: Duration::from_millis(5),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut c = Criterion {
            filter: None,
            measurement: Duration::from_millis(5),
            test_mode: true,
        };
        let mut count = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| count += 1);
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(5e-9), "5.0 ns");
        assert_eq!(fmt_time(2.5e-6), "2.50 µs");
        assert_eq!(fmt_time(1.25e-3), "1.25 ms");
        assert_eq!(fmt_time(2.0), "2.000 s");
    }
}
