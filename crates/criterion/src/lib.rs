//! Vendored stand-in for the subset of the `criterion` API used by this
//! workspace's benches.
//!
//! The build environment has no crates.io access, so this crate provides a
//! compatible, dependency-free measurement harness: [`Criterion`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`]. It reports median / mean / p95 per-iteration times
//! on stdout instead of criterion's HTML + statistics machinery, and honours
//! `--bench` (ignored) and a substring filter argument so `cargo bench foo`
//! behaves as expected.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Substring filter from the CLI (run only matching benchmarks).
    filter: Option<String>,
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter strings.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Run one benchmark if it passes the CLI filter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            measurement: self.measurement,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Measures a closure's per-iteration time.
pub struct Bencher {
    samples: Vec<f64>,
    measurement: Duration,
}

impl Bencher {
    /// Time `routine`, repeating it until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ≥ ~1 ms, so timer overhead stays < 0.1%.
        let mut batch = 1usize;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        // Measurement: collect per-batch samples.
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline || self.samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let p95 = s[((s.len() as f64 * 0.95) as usize).saturating_sub(1)];
        println!(
            "{name:<40} median {:>12} mean {:>12} p95 {:>12} ({} samples)",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(p95),
            s.len()
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// Group benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            measurement: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(3u64).wrapping_mul(7));
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
            measurement: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(5e-9), "5.0 ns");
        assert_eq!(fmt_time(2.5e-6), "2.50 µs");
        assert_eq!(fmt_time(1.25e-3), "1.25 ms");
        assert_eq!(fmt_time(2.0), "2.000 s");
    }
}
