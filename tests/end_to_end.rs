//! Cross-crate integration: exercise whole vertical slices of the stack,
//! from circuit samples up to the carrier-offload MAC.

use braidio::circuits::PassiveReceiverChain;
use braidio::phy::frame::{DecodeError, Frame};
use braidio::phy::modulation::OokModulator;
use braidio::prelude::*;
use braidio_rfsim::LinkKind;

/// A frame travels over a simulated passive link: framing → OOK → channel
/// scaling from the link budget → receive chain → bit slicing → decode.
#[test]
fn frame_over_passive_chain_round_trip() {
    let ch = Characterization::braidio();
    let chain = PassiveReceiverChain::braidio();

    // Carrier amplitude at the receive antenna for a 1.0 m passive link.
    let rx_power = ch.received_power(Mode::Passive, Meters::new(1.0));
    let v_env = (rx_power.watts() * 2.0 * 50.0).sqrt(); // 50 Ω antenna

    let frame = Frame::new(b"hello braidio".to_vec());
    let bits = frame.encode();
    let modulator = OokModulator::new(24, v_env, 0.05 * v_env);
    let envelope = modulator.modulate(&bits);
    let dt = modulator.sample_interval(BitsPerSecond::KBPS_100);

    let sliced = chain.demodulate(&envelope, dt);
    let decided: Vec<bool> = (0..bits.len())
        .map(|i| sliced[modulator.decision_index(i)])
        .collect();
    let decoded = Frame::decode(&decided, 4).expect("clean link decodes");
    assert_eq!(decoded, frame);
}

/// A corrupted payload is rejected by the CRC even when sync succeeds.
#[test]
fn corrupted_frame_rejected_end_to_end() {
    let frame = Frame::new(b"integrity".to_vec());
    let mut bits = frame.encode();
    let flip = bits.len() - 30; // inside payload/CRC region
    bits[flip] = !bits[flip];
    assert!(matches!(
        Frame::decode(&bits, 2),
        Err(DecodeError::BadCrc) | Err(DecodeError::NoSync)
    ));
}

/// The characterization's calibrated ranges must be consistent with the
/// raw link-budget crate: backscatter loses twice the dB per distance
/// doubling that passive does.
#[test]
fn characterization_consistent_with_link_budget() {
    let ch = Characterization::braidio();
    let d1 = Meters::new(1.0);
    let d2 = Meters::new(2.0);
    let p_drop = ch.received_power(Mode::Passive, d1) / ch.received_power(Mode::Passive, d2);
    let b_drop =
        ch.received_power(Mode::Backscatter, d1) / ch.received_power(Mode::Backscatter, d2);
    assert!((p_drop - 4.0).abs() < 0.01, "passive drop {p_drop}");
    assert!((b_drop - 16.0).abs() < 0.05, "backscatter drop {b_drop}");
    // And carrier placement maps to the right budget direction.
    assert!(LinkKind::Backscatter.receiver_has_carrier());
}

/// The full pipeline: probe → plan → braid → battery death, through the
/// packet-level live link — then cross-check total bits against the
/// analytic simulator on the same scenario (small batteries so the
/// packet loop is affordable).
#[test]
fn live_link_matches_analytic_simulator() {
    // Tiny synthetic batteries: 25 mWh vs 250 mWh.
    let tiny = braidio::radio::devices::Device {
        name: "tiny",
        battery_wh: 0.00025,
    };
    let small = braidio::radio::devices::Device {
        name: "small",
        battery_wh: 0.0025,
    };
    let mut link = LiveLink::open(
        tiny,
        small,
        LiveConfig {
            payload_bytes: 255,
            replan_every: 2000,
            ..LiveConfig::default()
        },
    );
    // Run to battery death.
    let mut steps = 0u64;
    loop {
        match link.step() {
            PacketOutcome::BatteryDead | PacketOutcome::LinkDown => break,
            _ => {}
        }
        steps += 1;
        assert!(steps < 20_000_000, "runaway live link");
    }
    let live_bits = link.stats().delivered as f64 * 255.0 * 8.0;

    let analytic = Transfer::between(tiny, small).run().braidio.bits;
    // The live link carries framing overhead (preamble/sync/CRC ≈ 4%) and
    // probe costs, so expect ~92–100% of the analytic payload capacity.
    let ratio = live_bits / analytic;
    assert!(
        (0.9..=1.02).contains(&ratio),
        "live {live_bits:.3e} vs analytic {analytic:.3e} (ratio {ratio:.3})"
    );
}

/// Energy conservation: the analytic simulator never spends more than the
/// batteries held, and power-proportional plans drain both ends fully.
#[test]
fn simulator_energy_conservation() {
    for (a, b) in [(0.26f64, 99.5f64), (6.55, 6.55), (99.5, 0.26)] {
        let dev_a = braidio::radio::devices::Device {
            name: "a",
            battery_wh: a,
        };
        let dev_b = braidio::radio::devices::Device {
            name: "b",
            battery_wh: b,
        };
        let r = Transfer::between(dev_a, dev_b).run().braidio;
        assert!(
            r.e1_spent.watt_hours() <= a * (1.0 + 1e-9),
            "{}",
            r.e1_spent
        );
        assert!(
            r.e2_spent.watt_hours() <= b * (1.0 + 1e-9),
            "{}",
            r.e2_spent
        );
        // At least one side fully drained.
        let frac1 = r.e1_spent.watt_hours() / a;
        let frac2 = r.e2_spent.watt_hours() / b;
        assert!(frac1.max(frac2) > 0.999, "nobody died: {frac1} {frac2}");
    }
}

/// The mode mix reported by the simulator obeys the plan the solver
/// produces for the same inputs.
#[test]
fn simulator_mode_mix_matches_solver() {
    let ch = Characterization::braidio();
    let plan = braidio::mac::offload::solve_at(
        &ch,
        Meters::new(0.5),
        Joules::from_watt_hours(0.78),
        Joules::from_watt_hours(6.55),
    )
    .unwrap();
    let r = Transfer::between(devices::APPLE_WATCH, devices::IPHONE_6S)
        .run()
        .braidio;
    for mode in Mode::ALL {
        let want = plan.mode_fraction(mode);
        let got = r.mode_share(mode);
        assert!(
            (want - got).abs() < 0.02,
            "{mode}: plan {want:.3} vs sim {got:.3}"
        );
    }
}
