//! Integration tests: the paper's headline claims, checked end-to-end
//! through the public API (abstract + §6 numbers).

use braidio::prelude::*;
use braidio_mac::offload::{options_at, solve_at};
use braidio_radio::characterization::{Characterization, Rate};
use braidio_radio::reader::CommercialReader;

/// Abstract: "Braidio can support transmitter–receiver power ratios between
/// 1:2546 to 3546:1".
#[test]
fn headline_dynamic_range() {
    let ch = Characterization::braidio();
    let opts = options_at(&ch, Meters::new(0.3));
    let asyms: Vec<f64> = opts.iter().map(|o| o.asymmetry()).collect();
    let max = asyms.iter().cloned().fold(f64::MIN, f64::max);
    let min = asyms.iter().cloned().fold(f64::MAX, f64::min);
    // Passive corner: TX:RX = 2546:1; backscatter corner: 1:3546.
    assert!((max - 2546.0).abs() / 2546.0 < 0.01, "max asymmetry {max}");
    assert!(
        (1.0 / min - 3546.0).abs() / 3546.0 < 0.01,
        "min asymmetry {min}"
    );
    // Seven orders of magnitude of span.
    let span = max / min;
    assert!(span > 1e6 && span < 1e8, "span {span:.3e}");
}

/// Abstract: "consumes between 16uW – 129mW across the different modes".
#[test]
fn headline_power_envelope() {
    let ch = Characterization::braidio();
    let mut min = Watts::new(f64::MAX);
    let mut max = Watts::ZERO;
    for p in ch.power_table() {
        min = min.min(p.tx).min(p.rx);
        max = max.max(p.tx).max(p.rx);
    }
    assert!(min >= Watts::from_microwatts(16.0) && min <= Watts::from_microwatts(17.0));
    assert!((max.milliwatts() - 129.0).abs() < 0.5);
}

/// Abstract: "increases the total bits transmitted by several orders of
/// magnitude when compared with Bluetooth, particularly when there is
/// significant asymmetry in battery levels".
#[test]
fn headline_gain_orders_of_magnitude() {
    let o = Transfer::between(devices::NIKE_FUEL_BAND, devices::MACBOOK_PRO_15).run();
    assert!(
        o.gain_over_bluetooth() > 100.0,
        "{}",
        o.gain_over_bluetooth()
    );
    let o = Transfer::between(devices::MACBOOK_PRO_15, devices::NIKE_FUEL_BAND).run();
    assert!(
        o.gain_over_bluetooth() > 100.0,
        "{}",
        o.gain_over_bluetooth()
    );
}

/// §6.3: "Even so, Braidio can get 43% performance improvement over a
/// commercial radio" at a 1:1 energy ratio.
#[test]
fn equal_energy_43_percent() {
    let o = Transfer::between(devices::IPHONE_6S, devices::IPHONE_6S).run();
    let g = o.gain_over_bluetooth();
    assert!((g - 1.43).abs() < 0.02, "gain {g}");
}

/// §6.1: Braidio's reader has ~40% less range but ~5x less power than the
/// AS3993 commercial reader at 100 kbps.
#[test]
fn commercial_reader_comparison() {
    let ch = Characterization::braidio();
    let braidio_range = ch.range(Mode::Backscatter, Rate::Kbps100).unwrap();
    let reader = CommercialReader::as3993();
    let shortfall = 1.0 - braidio_range.meters() / reader.range().meters();
    assert!(
        (shortfall - 0.4).abs() < 0.02,
        "range shortfall {shortfall}"
    );
    let power_ratio = reader.total_power / Watts::from_milliwatts(129.0);
    assert!((power_ratio - 5.0).abs() < 0.1, "power ratio {power_ratio}");
}

/// §6.2 Fig. 13: operational ranges per mode and bitrate.
#[test]
fn fig13_operational_ranges() {
    let ch = Characterization::braidio();
    let cases = [
        (Mode::Backscatter, Rate::Mbps1, 0.9),
        (Mode::Backscatter, Rate::Kbps100, 1.8),
        (Mode::Backscatter, Rate::Kbps10, 2.4),
        (Mode::Passive, Rate::Mbps1, 3.9),
        (Mode::Passive, Rate::Kbps100, 4.2),
        (Mode::Passive, Rate::Kbps10, 5.1),
    ];
    for (mode, rate, expect) in cases {
        let r = ch.range(mode, rate).unwrap().meters();
        assert!((r - expect).abs() < 0.05, "{mode:?}@{} = {r}", rate.label());
    }
}

/// §6.3 Fig. 16: switching between modes provides up to ~78% improvement
/// over the best single mode; in our calibration the near-symmetric pairs
/// land in the 1.4–1.8x band and never below 1.0x.
#[test]
fn switching_beats_single_modes() {
    for (a, b) in [
        (devices::IPHONE_6S, devices::IPHONE_6_PLUS),
        (devices::PEBBLE_WATCH, devices::APPLE_WATCH),
        (devices::SURFACE_BOOK, devices::MACBOOK_PRO_15),
    ] {
        let o = Transfer::between(a, b).run();
        let g = o.gain_over_best_single();
        assert!(g >= 1.3, "{} -> {}: {g}", a.name, b.name);
        assert!(g <= 1.9, "{} -> {}: {g}", a.name, b.name);
    }
}

/// §4.1 / Fig. 8: the regime ladder by distance.
#[test]
fn regime_ladder() {
    let ch = Characterization::braidio();
    assert_eq!(Regime::classify(&ch, Meters::new(1.0)), Regime::A);
    assert_eq!(Regime::classify(&ch, Meters::new(3.5)), Regime::B);
    assert_eq!(Regime::classify(&ch, Meters::new(5.5)), Regime::C);
}

/// §4: the worked example — devices with a 10:1 energy ratio end up
/// draining 10:1 under the plan.
#[test]
fn worked_example_power_proportionality() {
    let plan = solve_at(
        &Characterization::braidio(),
        Meters::new(0.5),
        Joules::from_watt_hours(10.0),
        Joules::from_watt_hours(1.0),
    )
    .unwrap();
    assert!(plan.exact);
    assert!((plan.asymmetry() - 10.0).abs() < 1e-9);
}

/// Fig. 15's asymmetric corner values land within the paper's decade and
/// preserve the direction ordering (large->small beats small->large).
#[test]
fn fig15_corner_shape() {
    let up = Transfer::between(devices::NIKE_FUEL_BAND, devices::MACBOOK_PRO_15)
        .run()
        .gain_over_bluetooth();
    let down = Transfer::between(devices::MACBOOK_PRO_15, devices::NIKE_FUEL_BAND)
        .run()
        .gain_over_bluetooth();
    assert!((150.0..450.0).contains(&up), "up {up}");
    assert!((150.0..500.0).contains(&down), "down {down}");
    assert!(down > up, "down {down} vs up {up}");
}
