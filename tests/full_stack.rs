//! Full-stack integration: the serial driver, the live link, mobility and
//! the tracer working together — one session from bytes to braids.

use braidio::driver::{Command, Driver, Event};
use braidio::prelude::*;

/// A host walks a watch↔phone module through a day: probe near, send,
/// walk away, re-probe, send more — all over the byte protocol — and the
/// event trace tells a coherent story.
#[test]
fn byte_protocol_session_with_mobility() {
    let mut module = Driver::new(
        devices::APPLE_WATCH,
        devices::IPHONE_6S,
        LiveConfig::default(),
    );

    let exec = |m: &mut Driver, c: Command| Event::decode(&m.execute(&c.encode())).unwrap();

    // Near: the braid leans backscatter (watch battery ≪ phone battery).
    assert_eq!(
        exec(&mut module, Command::SetDistance(40)),
        Event::Ack(0x02)
    );
    match exec(&mut module, Command::Probe) {
        Event::ProbeReport(rates) => assert_eq!(rates[2], 3, "{rates:?}"),
        other => panic!("{other:?}"),
    }
    match exec(&mut module, Command::Send(500)) {
        Event::SendReport { delivered, lost } => {
            assert_eq!(delivered, 500);
            assert_eq!(lost, 0);
        }
        other => panic!("{other:?}"),
    }

    // Walk to regime B: no backscatter, watch transmits actively.
    assert_eq!(
        exec(&mut module, Command::SetDistance(320)),
        Event::Ack(0x02)
    );
    match exec(&mut module, Command::Probe) {
        Event::ProbeReport(rates) => {
            assert_eq!(rates[2], 0, "no backscatter at 3.2 m: {rates:?}");
            assert!(rates[0] == 3 || rates[1] == 3, "{rates:?}");
        }
        other => panic!("{other:?}"),
    }
    match exec(&mut module, Command::Send(100)) {
        Event::SendReport { delivered, .. } => assert!(delivered >= 95),
        other => panic!("{other:?}"),
    }
}

/// The tracer's account of a braided session is internally consistent with
/// the link statistics and shows the plan actually interleaving.
#[test]
fn trace_tells_the_braid_story() {
    let mut link = LiveLink::open(
        devices::IPHONE_6S,
        devices::NEXUS_6P,
        LiveConfig {
            seed: 5,
            ..LiveConfig::default()
        },
    );
    link.attach_tracer(10_000);
    let stats = link.run_packets(2000);

    let tracer = link.tracer().unwrap();
    let mut packet_count = 0u64;
    let mut lost_count = 0u64;
    let mut last_at = Seconds::ZERO;
    let mut modes_seen = std::collections::BTreeSet::new();
    for e in tracer.events() {
        assert!(e.at() >= last_at, "trace must be time-ordered");
        last_at = e.at();
        if let TraceEvent::Packet {
            mode, delivered, ..
        } = e
        {
            packet_count += 1;
            if !delivered {
                lost_count += 1;
            }
            modes_seen.insert(*mode);
        }
    }
    // No fault injection, but the channel itself has a small nonzero BER at
    // 0.5 m (PER ~ 1e-5 per packet), so the occasional loss is physical.
    assert!(lost_count <= 3, "near-clean channel: {lost_count} lost");
    assert_eq!(packet_count, stats.delivered + stats.lost);
    assert_eq!(lost_count, stats.lost);
    // Near-symmetric phones braid two modes.
    assert!(modes_seen.len() >= 2, "{modes_seen:?}");
    // And the rendered dump is non-trivial prose.
    let dump = tracer.dump();
    assert!(dump.lines().count() > 1000);
}

/// Mobility + fault injection + tracer together: the link survives a noisy
/// walk and the trace records the re-plans it took.
#[test]
fn noisy_mobile_session_survives() {
    use braidio::mac::mobility::{MobilityTrace, RandomWalk};
    let mut link = LiveLink::open(
        devices::PEBBLE_WATCH,
        devices::IPHONE_6_PLUS,
        LiveConfig {
            drop_chance: 0.08,
            shadowing_sigma_db: 3.0,
            seed: 11,
            ..LiveConfig::default()
        },
    );
    link.attach_tracer(100_000);
    let mut walk = RandomWalk::new(
        Meters::new(0.5),
        Meters::new(0.3),
        Meters::new(2.2), // stay inside regime A/B
        Meters::new(0.4),
        Seconds::new(1.0),
        3,
    );
    for step in 0..40 {
        link.set_distance(walk.distance_at(Seconds::new(step as f64)));
        let _ = link.run_packets(100);
    }
    let stats = link.stats();
    assert!(stats.delivery_ratio() > 0.8, "{stats:?}");
    assert!(stats.replans >= 10, "walk should force re-plans: {stats:?}");
    let tracer = link.tracer().unwrap();
    let replans = tracer
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Replan { .. }))
        .count() as u64;
    assert_eq!(replans, stats.replans);
}
