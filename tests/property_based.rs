//! Property-based tests (proptest) on cross-crate invariants.

use braidio::mac::offload::{options_at, solve};
use braidio::prelude::*;
use braidio_radio::characterization::Characterization;
use proptest::prelude::*;

fn ch() -> Characterization {
    Characterization::braidio()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any feasible battery ratio, the solver's plan is exactly
    /// power-proportional, its fractions form a distribution, and it never
    /// delivers fewer bits than any single mode.
    #[test]
    fn solver_invariants(log_ratio in -3.3f64..3.4f64, e2_wh in 0.1f64..100.0f64) {
        let ratio = 10f64.powf(log_ratio);
        let e1 = Joules::from_watt_hours(e2_wh * ratio);
        let e2 = Joules::from_watt_hours(e2_wh);
        let opts = options_at(&ch(), Meters::new(0.4));
        let plan = solve(&opts, e1, e2).expect("options exist");

        let total: f64 = plan.allocations.iter().map(|a| a.fraction).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(plan.allocations.iter().all(|a| (0.0..=1.0).contains(&a.fraction)));

        if plan.exact {
            prop_assert!((plan.asymmetry() / ratio - 1.0).abs() < 1e-6,
                "asymmetry {} vs ratio {}", plan.asymmetry(), ratio);
        }

        let plan_bits = plan.bits_until_death(e1, e2);
        for o in &opts {
            let single = (e1.joules() / o.tx_cost.joules_per_bit())
                .min(e2.joules() / o.rx_cost.joules_per_bit());
            prop_assert!(plan_bits >= single * (1.0 - 1e-9),
                "plan {plan_bits:.3e} < single {single:.3e} ({:?})", o.mode);
        }
    }

    /// BER is monotone non-decreasing in distance for every mode and rate.
    #[test]
    fn ber_monotone_in_distance(d1 in 0.1f64..6.0, delta in 0.01f64..2.0) {
        let c = ch();
        let d2 = d1 + delta;
        for mode in [Mode::Passive, Mode::Backscatter] {
            for rate in [Rate::Kbps10, Rate::Kbps100, Rate::Mbps1] {
                let b1 = c.ber(mode, rate, Meters::new(d1));
                let b2 = c.ber(mode, rate, Meters::new(d2));
                prop_assert!(b2 >= b1 - 1e-12, "{mode} {}: {b1} -> {b2}", rate.label());
            }
        }
    }

    /// Slower bitrates never have less range (their calibrated noise floors
    /// are lower).
    #[test]
    fn slower_rates_reach_farther(d in 0.2f64..5.5) {
        let c = ch();
        let dist = Meters::new(d);
        for mode in [Mode::Passive, Mode::Backscatter] {
            let fast = c.available(mode, Rate::Mbps1, dist);
            let mid = c.available(mode, Rate::Kbps100, dist);
            let slow = c.available(mode, Rate::Kbps10, dist);
            // Availability is monotone down the rate ladder.
            prop_assert!(!fast || mid, "{mode} at {d}: 1M ok but 100k not");
            prop_assert!(!mid || slow, "{mode} at {d}: 100k ok but 10k not");
        }
    }

    /// Braidio total bits scale linearly with both batteries (doubling the
    /// pair doubles the bits) and never lose to Bluetooth.
    #[test]
    fn transfer_scaling_and_dominance(e1 in 0.05f64..5.0, e2 in 0.05f64..5.0) {
        let a = braidio::radio::devices::Device { name: "a", battery_wh: e1 };
        let b = braidio::radio::devices::Device { name: "b", battery_wh: e2 };
        let a2 = braidio::radio::devices::Device { name: "a2", battery_wh: 2.0 * e1 };
        let b2 = braidio::radio::devices::Device { name: "b2", battery_wh: 2.0 * e2 };

        let base = Transfer::between(a, b).run();
        prop_assert!(base.gain_over_bluetooth() >= 0.999,
            "braidio lost to bluetooth: {}", base.gain_over_bluetooth());

        let doubled = Transfer::between(a2, b2).run();
        let ratio = doubled.braidio.bits / base.braidio.bits;
        prop_assert!((ratio - 2.0).abs() < 0.02, "scaling ratio {ratio}");
    }

    /// dB conversions round-trip and compose multiplicatively.
    #[test]
    fn decibel_algebra(a in -60.0f64..60.0, b in -60.0f64..60.0) {
        let ga = Decibels::new(a);
        let gb = Decibels::new(b);
        prop_assert!((Decibels::from_linear(ga.linear()).db() - a).abs() < 1e-9);
        let sum = ga + gb;
        prop_assert!((sum.linear() - ga.linear() * gb.linear()).abs()
            <= 1e-9 * sum.linear().abs());
    }

    /// Power quantities: dBm round trip and energy accounting.
    #[test]
    fn power_energy_round_trip(dbm in -90.0f64..30.0, secs in 0.001f64..1000.0) {
        let p = Watts::from_dbm(dbm);
        prop_assert!((p.dbm() - dbm).abs() < 1e-9);
        let e = p * Seconds::new(secs);
        let back = e / Seconds::new(secs);
        prop_assert!((back.watts() - p.watts()).abs() <= 1e-12 * p.watts());
    }

    /// CRC-protected frames: any single bit flip after the preamble is
    /// never silently accepted as the original payload.
    #[test]
    fn frame_flip_never_silently_accepted(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        flip_pos in 0usize..512,
    ) {
        use braidio::phy::frame::Frame;
        let frame = Frame::new(payload);
        let mut bits = frame.encode();
        let idx = 32 + (flip_pos % (bits.len() - 32)); // skip preamble
        bits[idx] = !bits[idx];
        if let Ok(decoded) = Frame::decode(&bits, 0) { prop_assert_ne!(decoded, frame) }
    }
}
